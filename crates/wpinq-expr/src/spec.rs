//! `PlanSpec`: the serializable wire format for expression-built query plans.
//!
//! A [`PlanSpec`] is a flat, topologically ordered list of [`SpecNode`]s (every edge
//! points to an earlier index) plus a root index. Sources are identified by **name** —
//! process-local input ids never cross the wire; the measurement service maps names to
//! its own protected datasets. Every operator payload is an [`Expr`] (or a
//! [`ReduceSpec`] / constant), so the whole plan is data: it can be type-checked
//! ([`PlanSpec::validate`]), printed, optimized, hashed, and executed by a process that
//! has never seen the analyst's compiled code.
//!
//! The JSON encoding is versioned ([`WIRE_VERSION`]); a golden fixture in CI pins the
//! byte-exact format so accidental drift fails the build unless the version is bumped.

use wpinq_core::value::{Value, ValueType};

use crate::expr::Expr;
use crate::json::Json;
use crate::WireError;

/// Version stamp of the JSON wire format. Bump on any change to the encoding.
pub const WIRE_VERSION: u32 = 1;

/// The top-level JSON key identifying a plan document (and carrying the version).
pub const WIRE_HEADER: &str = "wpinq_planspec";

/// A group reducer expressed as data.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ReduceSpec {
    /// Reduce a group to its record count, then apply an expression to the count (`x`
    /// bound to the count as a `u64`). `CountThen(x)` is the plain count; the bucketed
    /// degree query uses `CountThen(x / k)`.
    CountThen(Expr),
}

impl ReduceSpec {
    /// Applies the reducer to a group size.
    pub fn eval_count(&self, count: u64) -> Value {
        match self {
            ReduceSpec::CountThen(post) => post.eval(&Value::U64(count)),
        }
    }

    /// The reducer's output type.
    pub fn infer(&self) -> Result<ValueType, WireError> {
        match self {
            ReduceSpec::CountThen(post) => post.infer(&ValueType::U64),
        }
    }

    /// The canonical byte string (stable closure identity) of this reducer.
    pub fn canonical(&self) -> String {
        self.to_json().to_compact()
    }

    /// The wire encoding.
    pub fn to_json(&self) -> Json {
        match self {
            ReduceSpec::CountThen(post) => Json::Arr(vec![Json::str("count_then"), post.to_json()]),
        }
    }

    /// Decodes the wire encoding.
    pub fn from_json(json: &Json) -> Result<ReduceSpec, WireError> {
        let arr = json
            .as_arr()
            .ok_or_else(|| WireError::new("reducer must be a JSON array"))?;
        match (arr.first().and_then(Json::as_str), arr.len()) {
            (Some("count_then"), 2) => Ok(ReduceSpec::CountThen(Expr::from_json(&arr[1])?)),
            _ => Err(WireError::new("unknown reducer encoding")),
        }
    }
}

impl std::fmt::Display for ReduceSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReduceSpec::CountThen(post) => write!(f, "count⤳{post}"),
        }
    }
}

/// One operator node of a serialized plan. `input`/`left`/`right` are indices into the
/// owning [`PlanSpec`]'s node list and always point at earlier entries.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecNode {
    /// A named source; the executing side binds it to a dataset of the declared type.
    Source {
        /// The dataset name the executing side resolves.
        name: String,
        /// Declared record type of the source.
        ty: ValueType,
    },
    /// `Select`: per-record transformation by an expression.
    Select {
        /// Parent node index.
        input: u32,
        /// The selector.
        expr: Expr,
    },
    /// `Where`: per-record filtering by a boolean expression.
    Where {
        /// Parent node index.
        input: u32,
        /// The predicate.
        expr: Expr,
    },
    /// `SelectMany` with unit-weight productions: each expression produces one record.
    SelectManyUnit {
        /// Parent node index.
        input: u32,
        /// One produced record per expression, in order.
        exprs: Vec<Expr>,
    },
    /// `GroupBy` with an expression key and a [`ReduceSpec`] reducer.
    GroupBy {
        /// Parent node index.
        input: u32,
        /// The grouping key.
        key: Expr,
        /// The group reducer.
        reduce: ReduceSpec,
    },
    /// `Shave` with a constant per-slice weight.
    ShaveConst {
        /// Parent node index.
        input: u32,
        /// The per-slice weight (positive, finite).
        step: f64,
    },
    /// The weight-rescaling equi-join.
    Join {
        /// Left parent node index.
        left: u32,
        /// Right parent node index.
        right: u32,
        /// Key of the left input.
        key_left: Expr,
        /// Key of the right input.
        key_right: Expr,
        /// Result selector over the pair `(left_record, right_record)`.
        result: Expr,
    },
    /// Element-wise maximum.
    Union {
        /// Left parent node index.
        left: u32,
        /// Right parent node index.
        right: u32,
    },
    /// Element-wise minimum.
    Intersect {
        /// Left parent node index.
        left: u32,
        /// Right parent node index.
        right: u32,
    },
    /// Element-wise addition.
    Concat {
        /// Left parent node index.
        left: u32,
        /// Right parent node index.
        right: u32,
    },
    /// Element-wise subtraction.
    Except {
        /// Left parent node index.
        left: u32,
        /// Right parent node index.
        right: u32,
    },
    /// The empty dataset constant.
    Empty {
        /// Record type of the (empty) output.
        ty: ValueType,
    },
}

impl SpecNode {
    fn parents(&self) -> Vec<u32> {
        match self {
            SpecNode::Source { .. } | SpecNode::Empty { .. } => Vec::new(),
            SpecNode::Select { input, .. }
            | SpecNode::Where { input, .. }
            | SpecNode::SelectManyUnit { input, .. }
            | SpecNode::GroupBy { input, .. }
            | SpecNode::ShaveConst { input, .. } => vec![*input],
            SpecNode::Join { left, right, .. }
            | SpecNode::Union { left, right }
            | SpecNode::Intersect { left, right }
            | SpecNode::Concat { left, right }
            | SpecNode::Except { left, right } => vec![*left, *right],
        }
    }
}

/// A serialized expression-built query plan: nodes in topological order plus a root.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSpec {
    /// The operator nodes; every edge points at an earlier index.
    pub nodes: Vec<SpecNode>,
    /// Index of the root (output) node.
    pub root: u32,
}

impl PlanSpec {
    /// Type-checks the plan: indices are forward-only and in range, expressions are
    /// well-typed, shave steps are positive and finite, binary inputs have equal types.
    /// Returns the record type of every node (the root's entry is the output type).
    pub fn validate(&self) -> Result<Vec<ValueType>, WireError> {
        if self.nodes.is_empty() {
            return Err(WireError::new("plan has no nodes"));
        }
        if self.root as usize >= self.nodes.len() {
            return Err(WireError::new(format!(
                "root index {} out of range for {} nodes",
                self.root,
                self.nodes.len()
            )));
        }
        let mut types: Vec<ValueType> = Vec::with_capacity(self.nodes.len());
        for (index, node) in self.nodes.iter().enumerate() {
            for parent in node.parents() {
                if parent as usize >= index {
                    return Err(WireError::new(format!(
                        "node {index} references node {parent}, which is not earlier in \
                         the topological order"
                    )));
                }
            }
            let at = |msg: WireError| WireError::new(format!("node {index}: {}", msg.message));
            let ty = match node {
                SpecNode::Source { name, ty } => {
                    if name.is_empty() {
                        return Err(WireError::new(format!("node {index}: empty source name")));
                    }
                    ty.clone()
                }
                SpecNode::Select { input, expr } => {
                    expr.infer(&types[*input as usize]).map_err(at)?
                }
                SpecNode::Where { input, expr } => {
                    let input_ty = &types[*input as usize];
                    match expr.infer(input_ty).map_err(at)? {
                        ValueType::Bool => input_ty.clone(),
                        other => {
                            return Err(WireError::new(format!(
                                "node {index}: predicate has type {other}, expected bool"
                            )))
                        }
                    }
                }
                SpecNode::SelectManyUnit { input, exprs } => {
                    if exprs.is_empty() {
                        return Err(WireError::new(format!(
                            "node {index}: select_many with no productions"
                        )));
                    }
                    let input_ty = &types[*input as usize];
                    let mut out: Option<ValueType> = None;
                    for expr in exprs {
                        let ty = expr.infer(input_ty).map_err(at)?;
                        match &out {
                            None => out = Some(ty),
                            Some(expected) if *expected == ty => {}
                            Some(expected) => {
                                return Err(WireError::new(format!(
                                    "node {index}: productions have mixed types {expected} \
                                     and {ty}"
                                )))
                            }
                        }
                    }
                    out.expect("at least one production")
                }
                SpecNode::GroupBy { input, key, reduce } => {
                    let key_ty = key.infer(&types[*input as usize]).map_err(at)?;
                    let reduce_ty = reduce.infer().map_err(at)?;
                    ValueType::Tuple(vec![key_ty, reduce_ty])
                }
                SpecNode::ShaveConst { input, step } => {
                    if !(step.is_finite() && *step > 0.0) {
                        return Err(WireError::new(format!(
                            "node {index}: shave step must be positive and finite, got {step}"
                        )));
                    }
                    ValueType::Tuple(vec![types[*input as usize].clone(), ValueType::U64])
                }
                SpecNode::Join {
                    left,
                    right,
                    key_left,
                    key_right,
                    result,
                } => {
                    let left_ty = types[*left as usize].clone();
                    let right_ty = types[*right as usize].clone();
                    let kl = key_left.infer(&left_ty).map_err(at)?;
                    let kr = key_right.infer(&right_ty).map_err(at)?;
                    if kl != kr {
                        return Err(WireError::new(format!(
                            "node {index}: join keys have mismatched types {kl} and {kr}"
                        )));
                    }
                    result
                        .infer(&ValueType::Tuple(vec![left_ty, right_ty]))
                        .map_err(at)?
                }
                SpecNode::Union { left, right }
                | SpecNode::Intersect { left, right }
                | SpecNode::Concat { left, right }
                | SpecNode::Except { left, right } => {
                    let left_ty = &types[*left as usize];
                    let right_ty = &types[*right as usize];
                    if left_ty != right_ty {
                        return Err(WireError::new(format!(
                            "node {index}: binary inputs have mismatched types {left_ty} \
                             and {right_ty}"
                        )));
                    }
                    left_ty.clone()
                }
                SpecNode::Empty { ty } => ty.clone(),
            };
            types.push(ty);
        }
        Ok(types)
    }

    /// The record type of the plan's output (validates first).
    pub fn output_type(&self) -> Result<ValueType, WireError> {
        Ok(self.validate()?[self.root as usize].clone())
    }

    /// The names and declared types of all sources, in node order.
    pub fn sources(&self) -> Vec<(&str, &ValueType)> {
        self.nodes
            .iter()
            .filter_map(|node| match node {
                SpecNode::Source { name, ty } => Some((name.as_str(), ty)),
                _ => None,
            })
            .collect()
    }

    // ---- serialization ----------------------------------------------------------------

    /// The versioned JSON document.
    pub fn to_json(&self) -> Json {
        let nodes = self.nodes.iter().map(spec_node_to_json).collect();
        Json::Obj(vec![
            (WIRE_HEADER.into(), Json::num(WIRE_VERSION)),
            ("nodes".into(), Json::Arr(nodes)),
            ("root".into(), Json::num(self.root)),
        ])
    }

    /// Compact JSON bytes (the shipping encoding).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_compact()
    }

    /// Pretty JSON (the golden-fixture encoding).
    pub fn to_json_pretty(&self) -> String {
        self.to_json().to_pretty()
    }

    /// A **process-stable** 64-bit FNV-1a hash of the canonical compact encoding
    /// ([`to_json_string`](Self::to_json_string)). Unlike `DefaultHasher`, the value does
    /// not vary per process, so services can use it to label plans in audit logs and
    /// cache diagnostics. Equal canonical bytes always hash equal; a hash is *not* a
    /// substitute for the bytes where collisions would matter (cache keys compare full
    /// encodings).
    pub fn canonical_hash(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.to_json_string().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Parses (and version-checks) a plan document. The plan is **not** type-checked
    /// here; call [`validate`](Self::validate) before executing it.
    pub fn from_json(text: &str) -> Result<PlanSpec, WireError> {
        let json = Json::parse(text).map_err(|e| WireError::new(e.to_string()))?;
        let version = json
            .get(WIRE_HEADER)
            .and_then(Json::as_u64)
            .ok_or_else(|| WireError::new(format!("missing '{WIRE_HEADER}' version header")))?;
        if version != u64::from(WIRE_VERSION) {
            return Err(WireError::new(format!(
                "unsupported wire version {version} (this build speaks {WIRE_VERSION})"
            )));
        }
        let nodes = json
            .get("nodes")
            .and_then(Json::as_arr)
            .ok_or_else(|| WireError::new("missing 'nodes' array"))?
            .iter()
            .map(spec_node_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let root = json
            .get("root")
            .and_then(Json::as_u64)
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| WireError::new("missing or out-of-range 'root' index"))?;
        Ok(PlanSpec { nodes, root })
    }
}

/// Encodes a [`ValueType`].
pub fn value_type_to_json(ty: &ValueType) -> Json {
    match ty {
        ValueType::Unit => Json::str("unit"),
        ValueType::Bool => Json::str("bool"),
        ValueType::U64 => Json::str("u64"),
        ValueType::I64 => Json::str("i64"),
        ValueType::Tuple(items) => {
            let mut arr = vec![Json::str("tuple")];
            arr.extend(items.iter().map(value_type_to_json));
            Json::Arr(arr)
        }
    }
}

/// Decodes a [`ValueType`].
pub fn value_type_from_json(json: &Json) -> Result<ValueType, WireError> {
    match json {
        Json::Str(s) => match s.as_str() {
            "unit" => Ok(ValueType::Unit),
            "bool" => Ok(ValueType::Bool),
            "u64" => Ok(ValueType::U64),
            "i64" => Ok(ValueType::I64),
            other => Err(WireError::new(format!("unknown type '{other}'"))),
        },
        Json::Arr(items) if items.first().and_then(Json::as_str) == Some("tuple") => {
            Ok(ValueType::Tuple(
                items[1..]
                    .iter()
                    .map(value_type_from_json)
                    .collect::<Result<_, _>>()?,
            ))
        }
        _ => Err(WireError::new("malformed type encoding")),
    }
}

/// Encodes a [`Value`] (the release record encoding). Decoding requires the expected
/// [`ValueType`], see [`value_from_json`].
pub fn value_to_json(value: &Value) -> Json {
    match value {
        Value::Unit => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::U64(n) => Json::num(n),
        Value::I64(n) => Json::num(n),
        Value::Tuple(items) => Json::Arr(items.iter().map(value_to_json).collect()),
    }
}

/// Decodes a [`Value`] against its expected type (JSON numbers alone cannot distinguish
/// `u64` from `i64`).
pub fn value_from_json(json: &Json, ty: &ValueType) -> Result<Value, WireError> {
    match (ty, json) {
        (ValueType::Unit, Json::Null) => Ok(Value::Unit),
        (ValueType::Bool, Json::Bool(b)) => Ok(Value::Bool(*b)),
        (ValueType::U64, json) => json
            .as_u64()
            .map(Value::U64)
            .ok_or_else(|| WireError::new("expected an unsigned integer")),
        (ValueType::I64, json) => json
            .as_i64()
            .map(Value::I64)
            .ok_or_else(|| WireError::new("expected a signed integer")),
        (ValueType::Tuple(item_types), Json::Arr(items)) if item_types.len() == items.len() => {
            Ok(Value::Tuple(
                items
                    .iter()
                    .zip(item_types)
                    .map(|(item, item_ty)| value_from_json(item, item_ty))
                    .collect::<Result<_, _>>()?,
            ))
        }
        (ty, _) => Err(WireError::new(format!("value does not match type {ty}"))),
    }
}

fn obj(op: &str, rest: Vec<(String, Json)>) -> Json {
    let mut members = vec![("op".to_string(), Json::str(op))];
    members.extend(rest);
    Json::Obj(members)
}

fn spec_node_to_json(node: &SpecNode) -> Json {
    match node {
        SpecNode::Source { name, ty } => obj(
            "source",
            vec![
                ("name".into(), Json::str(name.clone())),
                ("type".into(), value_type_to_json(ty)),
            ],
        ),
        SpecNode::Select { input, expr } => obj(
            "select",
            vec![
                ("input".into(), Json::num(input)),
                ("expr".into(), expr.to_json()),
            ],
        ),
        SpecNode::Where { input, expr } => obj(
            "where",
            vec![
                ("input".into(), Json::num(input)),
                ("expr".into(), expr.to_json()),
            ],
        ),
        SpecNode::SelectManyUnit { input, exprs } => obj(
            "select_many_unit",
            vec![
                ("input".into(), Json::num(input)),
                (
                    "exprs".into(),
                    Json::Arr(exprs.iter().map(Expr::to_json).collect()),
                ),
            ],
        ),
        SpecNode::GroupBy { input, key, reduce } => obj(
            "group_by",
            vec![
                ("input".into(), Json::num(input)),
                ("key".into(), key.to_json()),
                ("reduce".into(), reduce.to_json()),
            ],
        ),
        SpecNode::ShaveConst { input, step } => obj(
            "shave_const",
            vec![
                ("input".into(), Json::num(input)),
                ("step".into(), Json::f64(*step)),
            ],
        ),
        SpecNode::Join {
            left,
            right,
            key_left,
            key_right,
            result,
        } => obj(
            "join",
            vec![
                ("left".into(), Json::num(left)),
                ("right".into(), Json::num(right)),
                ("key_left".into(), key_left.to_json()),
                ("key_right".into(), key_right.to_json()),
                ("result".into(), result.to_json()),
            ],
        ),
        SpecNode::Union { left, right } => obj(
            "union",
            vec![
                ("left".into(), Json::num(left)),
                ("right".into(), Json::num(right)),
            ],
        ),
        SpecNode::Intersect { left, right } => obj(
            "intersect",
            vec![
                ("left".into(), Json::num(left)),
                ("right".into(), Json::num(right)),
            ],
        ),
        SpecNode::Concat { left, right } => obj(
            "concat",
            vec![
                ("left".into(), Json::num(left)),
                ("right".into(), Json::num(right)),
            ],
        ),
        SpecNode::Except { left, right } => obj(
            "except",
            vec![
                ("left".into(), Json::num(left)),
                ("right".into(), Json::num(right)),
            ],
        ),
        SpecNode::Empty { ty } => obj("empty", vec![("type".into(), value_type_to_json(ty))]),
    }
}

fn spec_node_from_json(json: &Json) -> Result<SpecNode, WireError> {
    let op = json
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::new("node missing 'op'"))?;
    let index = |key: &str| -> Result<u32, WireError> {
        json.get(key)
            .and_then(Json::as_u64)
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| {
                WireError::new(format!("'{op}' node missing or out-of-range index '{key}'"))
            })
    };
    let expr = |key: &str| -> Result<Expr, WireError> {
        Expr::from_json(
            json.get(key)
                .ok_or_else(|| WireError::new(format!("'{op}' node missing '{key}'")))?,
        )
    };
    match op {
        "source" => Ok(SpecNode::Source {
            name: json
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| WireError::new("'source' node missing 'name'"))?
                .to_string(),
            ty: value_type_from_json(
                json.get("type")
                    .ok_or_else(|| WireError::new("'source' node missing 'type'"))?,
            )?,
        }),
        "select" => Ok(SpecNode::Select {
            input: index("input")?,
            expr: expr("expr")?,
        }),
        "where" => Ok(SpecNode::Where {
            input: index("input")?,
            expr: expr("expr")?,
        }),
        "select_many_unit" => Ok(SpecNode::SelectManyUnit {
            input: index("input")?,
            exprs: json
                .get("exprs")
                .and_then(Json::as_arr)
                .ok_or_else(|| WireError::new("'select_many_unit' node missing 'exprs'"))?
                .iter()
                .map(Expr::from_json)
                .collect::<Result<_, _>>()?,
        }),
        "group_by" => Ok(SpecNode::GroupBy {
            input: index("input")?,
            key: expr("key")?,
            reduce: ReduceSpec::from_json(
                json.get("reduce")
                    .ok_or_else(|| WireError::new("'group_by' node missing 'reduce'"))?,
            )?,
        }),
        "shave_const" => Ok(SpecNode::ShaveConst {
            input: index("input")?,
            step: json
                .get("step")
                .and_then(Json::as_f64)
                .ok_or_else(|| WireError::new("'shave_const' node missing 'step'"))?,
        }),
        "join" => Ok(SpecNode::Join {
            left: index("left")?,
            right: index("right")?,
            key_left: expr("key_left")?,
            key_right: expr("key_right")?,
            result: expr("result")?,
        }),
        "union" => Ok(SpecNode::Union {
            left: index("left")?,
            right: index("right")?,
        }),
        "intersect" => Ok(SpecNode::Intersect {
            left: index("left")?,
            right: index("right")?,
        }),
        "concat" => Ok(SpecNode::Concat {
            left: index("left")?,
            right: index("right")?,
        }),
        "except" => Ok(SpecNode::Except {
            left: index("left")?,
            right: index("right")?,
        }),
        "empty" => Ok(SpecNode::Empty {
            ty: value_type_from_json(
                json.get("type")
                    .ok_or_else(|| WireError::new("'empty' node missing 'type'"))?,
            )?,
        }),
        other => Err(WireError::new(format!("unknown node op '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge_ty() -> ValueType {
        ValueType::Tuple(vec![ValueType::U64, ValueType::U64])
    }

    /// The degree-CCDF plan, hand-assembled at the wire level.
    fn degree_spec() -> PlanSpec {
        let x = Expr::input;
        PlanSpec {
            nodes: vec![
                SpecNode::Source {
                    name: "edges".into(),
                    ty: edge_ty(),
                },
                SpecNode::Select {
                    input: 0,
                    expr: x().field(0),
                },
                SpecNode::ShaveConst {
                    input: 1,
                    step: 1.0,
                },
                SpecNode::Select {
                    input: 2,
                    expr: x().field(1),
                },
            ],
            root: 3,
        }
    }

    #[test]
    fn validation_infers_node_types() {
        let types = degree_spec().validate().unwrap();
        assert_eq!(types[0], edge_ty());
        assert_eq!(types[1], ValueType::U64);
        assert_eq!(
            types[2],
            ValueType::Tuple(vec![ValueType::U64, ValueType::U64])
        );
        assert_eq!(types[3], ValueType::U64);
        assert_eq!(degree_spec().output_type().unwrap(), ValueType::U64);
        assert_eq!(degree_spec().sources(), vec![("edges", &edge_ty())]);
    }

    #[test]
    fn validation_rejects_malformed_plans() {
        // Forward reference.
        let mut spec = degree_spec();
        spec.nodes[1] = SpecNode::Select {
            input: 3,
            expr: Expr::input(),
        };
        assert!(spec.validate().is_err());

        // Root out of range.
        let mut spec = degree_spec();
        spec.root = 9;
        assert!(spec.validate().is_err());

        // Ill-typed predicate.
        let mut spec = degree_spec();
        spec.nodes.push(SpecNode::Where {
            input: 3,
            expr: Expr::input(),
        });
        spec.root = 4;
        assert!(spec.validate().is_err());

        // Bad shave step.
        let mut spec = degree_spec();
        spec.nodes[2] = SpecNode::ShaveConst {
            input: 1,
            step: -1.0,
        };
        assert!(spec.validate().is_err());

        // Mixed-type binary.
        let mut spec = degree_spec();
        spec.nodes.push(SpecNode::Concat { left: 0, right: 3 });
        spec.root = 4;
        assert!(spec.validate().is_err(), "u64 vs (u64, u64) concat");
    }

    #[test]
    fn json_round_trip_is_exact() {
        let spec = PlanSpec {
            nodes: vec![
                SpecNode::Source {
                    name: "edges".into(),
                    ty: edge_ty(),
                },
                SpecNode::Where {
                    input: 0,
                    expr: Expr::input().field(0).ne(Expr::input().field(1)),
                },
                SpecNode::SelectManyUnit {
                    input: 1,
                    exprs: vec![Expr::input().field(0), Expr::input().field(1)],
                },
                SpecNode::GroupBy {
                    input: 2,
                    key: Expr::input(),
                    reduce: ReduceSpec::CountThen(Expr::input().div(Expr::u64(2))),
                },
                SpecNode::Join {
                    left: 3,
                    right: 3,
                    key_left: Expr::input().field(0),
                    key_right: Expr::input().field(0),
                    result: Expr::input().field(0).field(1),
                },
                SpecNode::Empty { ty: ValueType::U64 },
                SpecNode::Union { left: 4, right: 5 },
                SpecNode::Intersect { left: 6, right: 6 },
                SpecNode::Concat { left: 7, right: 7 },
                SpecNode::Except { left: 8, right: 8 },
            ],
            root: 9,
        };
        let text = spec.to_json_string();
        let back = PlanSpec::from_json(&text).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_json_string(), text, "serialization is canonical");
        let pretty = spec.to_json_pretty();
        assert_eq!(PlanSpec::from_json(&pretty).unwrap(), spec);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn shave_step_round_trips_bitwise() {
        let step = f64::from_bits(0x3fe5555555555555); // 1/3 + ulp noise
        let spec = PlanSpec {
            nodes: vec![
                SpecNode::Source {
                    name: "s".into(),
                    ty: ValueType::U64,
                },
                SpecNode::ShaveConst { input: 0, step },
            ],
            root: 1,
        };
        let back = PlanSpec::from_json(&spec.to_json_string()).unwrap();
        match &back.nodes[1] {
            SpecNode::ShaveConst { step: got, .. } => assert_eq!(got.to_bits(), step.to_bits()),
            other => panic!("unexpected node {other:?}"),
        }
    }

    #[test]
    fn out_of_range_indices_are_rejected_not_truncated() {
        // 2^32 would silently wrap to index 0 under an `as u32` cast, making the decoded
        // plan differ from the document; the parser must reject instead.
        let huge = r#"{"wpinq_planspec":1,"nodes":[
            {"op":"source","name":"edges","type":["tuple","u64","u64"]},
            {"op":"select","input":4294967296,"expr":["in"]}
        ],"root":1}"#;
        let err = PlanSpec::from_json(huge).unwrap_err();
        assert!(err.message.contains("out-of-range"), "{err}");

        let huge_root = r#"{"wpinq_planspec":1,"nodes":[
            {"op":"source","name":"edges","type":"u64"}
        ],"root":4294967296}"#;
        let err = PlanSpec::from_json(huge_root).unwrap_err();
        assert!(err.message.contains("out-of-range"), "{err}");
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut json = degree_spec().to_json();
        if let Json::Obj(members) = &mut json {
            members[0].1 = Json::num(999u32);
        }
        let err = PlanSpec::from_json(&json.to_compact()).unwrap_err();
        assert!(err.message.contains("version"), "{err}");
    }

    #[test]
    fn values_round_trip_against_their_types() {
        let ty = ValueType::Tuple(vec![
            ValueType::Tuple(vec![ValueType::U64, ValueType::U64, ValueType::U64]),
            ValueType::I64,
            ValueType::Bool,
            ValueType::Unit,
        ]);
        let value = Value::Tuple(vec![
            Value::Tuple(vec![Value::U64(1), Value::U64(2), Value::U64(3)]),
            Value::I64(-9),
            Value::Bool(true),
            Value::Unit,
        ]);
        let json = value_to_json(&value);
        assert_eq!(value_from_json(&json, &ty).unwrap(), value);
        // Decoding against the wrong type fails rather than guessing.
        assert!(value_from_json(&json, &ValueType::U64).is_err());
    }
}
