//! The candidate-graph MCMC state: an edge-swap random walk over synthetic graphs, scored
//! by incremental query pipelines.

use rand::Rng;
use wpinq::plan::IncrementalEngine;
use wpinq_analyses::edges::symmetric_edge_dataset;
use wpinq_dataflow::Delta;
use wpinq_graph::{EdgeSwap, Graph};

use crate::metropolis::CandidateState;
use crate::scorers::{DistanceSink, Edge, EdgeFlow, EdgeInput};

/// A synthetic candidate graph, its incremental dataflow, and the scorers binding it to the
/// released measurements.
///
/// The random walk is the degree-preserving double-edge swap of Section 5.1: replace
/// `(a, b)` and `(c, d)` by `(a, d)` and `(c, b)`. Each applied swap pushes eight directed
/// edge deltas through the dataflow (four removals and four insertions, counting both
/// orientations), and the scorer sinks update `‖Q(A) − m‖₁` incrementally.
///
/// The dataflow runs on either incremental engine — the sequential `Stream` graph or the
/// hash-partitioned sharded engine ([`IncrementalEngine`]); both propagate swaps bitwise
/// identically, so a trajectory's accept/reject decisions are engine-independent.
pub struct GraphCandidate {
    graph: Graph,
    engine: IncrementalEngine,
    input: EdgeInput,
    sinks: Vec<Box<dyn DistanceSink>>,
}

impl GraphCandidate {
    /// Builds a candidate over the sequential engine. `build_scorers` receives the
    /// candidate's edge flow and attaches whatever measurement scorers the workflow
    /// needs; afterwards the seed graph's edges are loaded into the dataflow.
    pub fn new<F>(seed: Graph, build_scorers: F) -> Self
    where
        F: FnOnce(&EdgeFlow) -> Vec<Box<dyn DistanceSink>>,
    {
        Self::with_engine(seed, IncrementalEngine::Sequential, build_scorers)
    }

    /// [`new`](Self::new) over an explicit incremental engine.
    pub fn with_engine<F>(seed: Graph, engine: IncrementalEngine, build_scorers: F) -> Self
    where
        F: FnOnce(&EdgeFlow) -> Vec<Box<dyn DistanceSink>>,
    {
        // Swaps preserve the edge count, so the seed's symmetric dataset size is the
        // stream's cardinality for the whole walk — exactly the hint the sharded
        // lowering wants for calibrating its inline/parallel cutovers.
        let dataset = symmetric_edge_dataset(&seed);
        let (input, flow) = EdgeFlow::create_sized(engine, Some(dataset.len()));
        let sinks = build_scorers(&flow);
        input.push_dataset(&dataset);
        GraphCandidate {
            graph: seed,
            engine,
            input,
            sinks,
        }
    }

    /// The incremental engine this candidate's dataflow runs on.
    pub fn engine(&self) -> IncrementalEngine {
        self.engine
    }

    /// The current synthetic graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the candidate and returns the synthetic graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Per-scorer `(label, distance)` pairs, for reporting.
    pub fn scorer_distances(&self) -> Vec<(String, f64)> {
        self.sinks
            .iter()
            .map(|s| (s.label().to_string(), s.distance()))
            .collect()
    }

    /// Recomputes every scorer's distance from scratch and returns the summed drift against
    /// the incrementally maintained values (should be ~0; used as a long-run guard).
    pub fn scorer_drift(&self) -> f64 {
        self.sinks
            .iter()
            .map(|s| (s.distance() - s.recompute_distance()).abs())
            .sum()
    }

    fn swap_deltas(swap: &EdgeSwap, apply: bool) -> Vec<Delta<Edge>> {
        let sign = if apply { 1.0 } else { -1.0 };
        let mut deltas = Vec::with_capacity(8);
        for (a, b) in [swap.remove_a, swap.remove_b] {
            deltas.push(((a, b), -sign));
            deltas.push(((b, a), -sign));
        }
        for (a, b) in [swap.insert_a, swap.insert_b] {
            deltas.push(((a, b), sign));
            deltas.push(((b, a), sign));
        }
        deltas
    }

    /// Applies a validated swap to both the graph and the dataflow.
    fn push_swap(&mut self, swap: &EdgeSwap, apply: bool) {
        if apply {
            let ok = self.graph.apply_swap(swap);
            debug_assert!(ok, "swap was validated at proposal time");
        } else {
            self.graph.undo_swap(swap);
        }
        let deltas = Self::swap_deltas(swap, apply);
        self.input.push(&deltas);
    }
}

impl CandidateState for GraphCandidate {
    type Move = EdgeSwap;

    fn propose<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<EdgeSwap> {
        let ab = self.graph.random_edge(rng)?;
        let cd = self.graph.random_edge(rng)?;
        let cd = if rng.gen::<bool>() { cd } else { (cd.1, cd.0) };
        self.graph.propose_swap(ab, cd)
    }

    fn apply(&mut self, mv: &EdgeSwap) -> f64 {
        self.push_swap(mv, true);
        self.energy()
    }

    fn undo(&mut self, mv: &EdgeSwap) {
        self.push_swap(mv, false);
    }

    fn energy(&self) -> f64 {
        self.sinks.iter().map(|s| s.distance()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metropolis::{MetropolisHastings, StepOutcome};
    use crate::scorers::{degree_sequence_scorer, tbi_scorer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wpinq::PrivacyBudget;
    use wpinq_analyses::degree::degree_sequence_query;
    use wpinq_analyses::edges::GraphEdges;
    use wpinq_analyses::tbi::TbiMeasurement;
    use wpinq_graph::{generators, stats};

    fn measured_candidate(secret: &Graph, seed: Graph, epsilon: f64) -> GraphCandidate {
        measured_candidate_on(secret, seed, epsilon, IncrementalEngine::Sequential)
    }

    fn measured_candidate_on(
        secret: &Graph,
        seed: Graph,
        epsilon: f64,
        engine: IncrementalEngine,
    ) -> GraphCandidate {
        let edges = GraphEdges::new(secret, PrivacyBudget::unlimited());
        let mut rng = StdRng::seed_from_u64(7);
        let tbi = TbiMeasurement::measure(&edges.queryable(), epsilon, &mut rng).unwrap();
        let seq = degree_sequence_query(&edges.queryable())
            .noisy_count(epsilon, &mut rng)
            .unwrap();
        GraphCandidate::with_engine(seed, engine, |flow| {
            vec![tbi_scorer(flow, &tbi), degree_sequence_scorer(flow, &seq)]
        })
    }

    #[test]
    fn loading_the_true_graph_gives_near_zero_energy_at_high_epsilon() {
        let mut rng = StdRng::seed_from_u64(1);
        let secret = generators::powerlaw_cluster(40, 3, 0.7, &mut rng);
        let candidate = measured_candidate(&secret, secret.clone(), 1e6);
        assert!(candidate.energy() < 1e-3, "energy {}", candidate.energy());
        assert_eq!(candidate.scorer_distances().len(), 2);
        assert!(candidate.scorer_drift() < 1e-9);
    }

    #[test]
    fn apply_then_undo_restores_energy_and_graph() {
        let mut rng = StdRng::seed_from_u64(2);
        let secret = generators::powerlaw_cluster(40, 3, 0.7, &mut rng);
        let mut seed = secret.clone();
        generators::degree_preserving_rewire(&mut seed, 200, &mut rng);
        let mut candidate = measured_candidate(&secret, seed.clone(), 1e6);
        let initial_energy = candidate.energy();
        let initial_edges = candidate.graph().sorted_edges();

        let mut applied = 0;
        for _ in 0..50 {
            if let Some(mv) = candidate.propose(&mut rng) {
                candidate.apply(&mv);
                candidate.undo(&mv);
                applied += 1;
            }
        }
        assert!(applied > 0);
        assert!((candidate.energy() - initial_energy).abs() < 1e-6);
        assert_eq!(candidate.graph().sorted_edges(), initial_edges);
        assert!(candidate.scorer_drift() < 1e-6);
    }

    #[test]
    fn swaps_preserve_the_degree_sequence_so_its_scorer_stays_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let secret = generators::powerlaw_cluster(40, 3, 0.7, &mut rng);
        let mut candidate = measured_candidate(&secret, secret.clone(), 1e6);
        let seq_distance_before = candidate.scorer_distances()[1].1;
        for _ in 0..30 {
            if let Some(mv) = candidate.propose(&mut rng) {
                candidate.apply(&mv);
            }
        }
        let seq_distance_after = candidate.scorer_distances()[1].1;
        assert!(
            (seq_distance_before - seq_distance_after).abs() < 1e-6,
            "degree-sequence distance moved: {seq_distance_before} -> {seq_distance_after}"
        );
        assert_eq!(
            stats::degree_sequence(candidate.graph()),
            stats::degree_sequence(&secret)
        );
    }

    #[test]
    fn seeded_trajectories_are_bitwise_identical_across_engines() {
        // The acceptance test compares exact floats, so bitwise-equal energies imply the
        // engines accept and reject the very same swaps — the whole seeded trajectory,
        // graph included, is engine-independent.
        let mut rng = StdRng::seed_from_u64(9);
        let secret = generators::powerlaw_cluster(40, 3, 0.7, &mut rng);
        let mut seed = secret.clone();
        generators::degree_preserving_rewire(&mut seed, 150, &mut rng);
        let engines = [
            IncrementalEngine::Sequential,
            IncrementalEngine::Sharded(1),
            IncrementalEngine::Sharded(2),
            IncrementalEngine::Sharded(8),
        ];
        let mut results = Vec::new();
        for engine in engines {
            let mut candidate = measured_candidate_on(&secret, seed.clone(), 1e5, engine);
            assert_eq!(candidate.engine(), engine);
            let driver = MetropolisHastings::new(0.1, 10_000.0);
            let mut walk_rng = StdRng::seed_from_u64(42);
            let mut energies = Vec::with_capacity(300);
            for _ in 0..300 {
                driver.step(&mut candidate, &mut walk_rng);
                energies.push(candidate.energy());
            }
            assert!(candidate.scorer_drift() < 1e-6);
            results.push((energies, candidate.graph().sorted_edges()));
        }
        let (reference_energies, reference_edges) = &results[0];
        for (energies, edges) in &results[1..] {
            assert_eq!(edges, reference_edges, "trajectory graphs diverged");
            for (step, (a, b)) in energies.iter().zip(reference_energies).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "energy diverged at step {step}");
            }
        }
    }

    #[test]
    fn mcmc_over_a_candidate_recovers_triangles_lost_by_rewiring() {
        // Miniature version of the Figure 4 experiment: start from a degree-matched rewired
        // seed and check that MCMC against a (nearly noise-free) TbI measurement pushes the
        // triangle count back up towards the secret graph's.
        let mut rng = StdRng::seed_from_u64(4);
        let secret = generators::powerlaw_cluster(60, 3, 0.9, &mut rng);
        let mut seed = secret.clone();
        let seed_edges = seed.num_edges();
        generators::degree_preserving_rewire(&mut seed, 10 * seed_edges, &mut rng);
        let seed_triangles = stats::triangle_count(&seed);
        let secret_triangles = stats::triangle_count(&secret);
        assert!(seed_triangles < secret_triangles);

        let mut candidate = measured_candidate(&secret, seed, 1e5);
        let driver = MetropolisHastings::new(0.1, 10_000.0);
        let mut accepted = 0;
        for _ in 0..4_000 {
            if driver.step(&mut candidate, &mut rng) == StepOutcome::Accepted {
                accepted += 1;
            }
        }
        let final_triangles = stats::triangle_count(candidate.graph());
        assert!(accepted > 0, "no swaps were accepted");
        assert!(
            final_triangles > seed_triangles,
            "triangles did not increase: seed {seed_triangles}, final {final_triangles}, secret {secret_triangles}"
        );
        assert!(candidate.scorer_drift() < 1e-6);
    }
}
