//! # wpinq-mcmc — probabilistic inference over wPINQ measurements
//!
//! Section 4 of the paper turns released wPINQ measurements into synthetic datasets by
//! Metropolis–Hastings sampling from the (approximate) posterior over inputs:
//! `Pr[A | m] ∝ exp(−ε·‖Q(A) − m‖₁)`, sharpened by a `pow` exponent so the walk behaves
//! like a guided search. This crate provides:
//!
//! * [`metropolis`] — a generic Metropolis–Hastings engine over any [`CandidateState`],
//!   working in log space so large `pow` values (the paper uses 10 000) cannot overflow.
//! * [`graph_candidate`] — the candidate-graph state driven by the paper's edge-swap random
//!   walk, scored by incremental dataflow pipelines from `wpinq-dataflow` so each step costs
//!   a delta update rather than a query re-execution (Section 4.3).
//! * [`scorers`] — incremental versions of the analyses' queries (degree CCDF/sequence, TbD,
//!   TbI, JDD) wired to [`L1Scorer`](wpinq_dataflow::L1Scorer) sinks against released
//!   measurements.
//! * [`seed`] — Phase 1 of the synthesis workflow (Section 5.1): fit the noisy degree
//!   measurements and generate a random graph with that degree sequence.
//! * [`synthesis`] — the end-to-end workflow used by the experiments: measure, seed, swap,
//!   and record trajectories of triangle count and assortativity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph_candidate;
pub mod metropolis;
pub mod scorers;
pub mod seed;
pub mod synthesis;

pub use graph_candidate::GraphCandidate;
pub use metropolis::{CandidateState, McmcStats, MetropolisHastings, StepOutcome};
pub use synthesis::{
    SynthesisConfig, SynthesisResult, TrajectoryPoint, TriangleQuery, MCMC_ACCEPTANCE_RATIO_METRIC,
    MCMC_ACCEPTED_METRIC, MCMC_ENERGY_METRIC, MCMC_STEPS_METRIC, MCMC_STEPS_PER_SECOND_METRIC,
};
