//! Measurement scorers for candidate graphs, built from the analyses' *plan* definitions.
//!
//! Each scorer takes the very plan that produced the released measurement (degree CCDF /
//! sequence, TbD, TbI, JDD from `wpinq-analyses`), lowers it onto the candidate's
//! symmetric directed edge stream through the plan IR's incremental compiler, and attaches
//! an [`L1Scorer`](wpinq_dataflow::L1Scorer) sink against the released values. The sum of
//! the sink distances is the energy `‖Q(A) − m‖₁` the MCMC acceptance test uses.
//!
//! Before the plan IR existed this module hand-wired a second copy of every query as a
//! `Stream` pipeline; now batch measurement, incremental scoring, and privacy accounting
//! all flow from the single definition in `wpinq-analyses`. Lowering runs through the
//! plan optimizer (`wpinq::plan::OptimizeLevel`, default from `WPINQ_OPTIMIZE`), so
//! structurally duplicated subqueries — even ones built by separate plan-constructor
//! calls — compile to *one* shared dataflow node and every candidate edge delta is
//! processed once per distinct operator instead of once per authored copy.
//!
//! The pipelines run over *public* synthetic candidates and *released* measurements only;
//! no protected data is touched here, which is why no privacy accounting appears.

use std::collections::HashMap;

use wpinq::plan::Plan;
use wpinq::NoisyCounts;
use wpinq::Record;
use wpinq_analyses::degree::{degree_ccdf_plan, degree_sequence_plan};
use wpinq_analyses::edges::EdgeSource;
use wpinq_analyses::jdd::{jdd_plan, jdd_record_weight};
use wpinq_analyses::tbi::{tbi_plan, TbiMeasurement};
use wpinq_analyses::triangles::{tbd_plan, TbdMeasurement};
use wpinq_dataflow::{ScorerHandle, ShardedInput, ShardedStream, Stream};

/// A directed edge record, matching `wpinq_analyses::edges::Edge`.
pub type Edge = (u32, u32);

/// A candidate graph's edge delta flow under either incremental engine — the seam the
/// scorers lower analysis plans onto. Built by
/// [`GraphCandidate::with_engine`](crate::GraphCandidate::with_engine) from a
/// [`wpinq::plan::IncrementalEngine`] choice; both variants score bitwise identically.
pub enum EdgeFlow {
    /// The sequential `Stream` graph.
    Sequential(Stream<Edge>),
    /// The hash-partitioned sharded engine.
    Sharded {
        /// The candidate's hash-partitioned edge delta stream.
        stream: ShardedStream<Edge>,
        /// Expected number of directed edge records, when known (2·|E| of the candidate).
        /// Feeds the sharded lowering's inline/parallel cutover calibration; never
        /// affects scorer values.
        expected_edges: Option<usize>,
    },
}

impl EdgeFlow {
    /// Creates the flow (input handle + stream) for the given engine.
    pub fn create(engine: wpinq::plan::IncrementalEngine) -> (EdgeInput, EdgeFlow) {
        Self::create_sized(engine, None)
    }

    /// [`create`](Self::create) with the expected directed-edge count of the candidate,
    /// when the caller knows it. The sharded engine calibrates its per-operator
    /// inline/parallel cutovers from the hint; the sequential engine ignores it.
    pub fn create_sized(
        engine: wpinq::plan::IncrementalEngine,
        expected_edges: Option<usize>,
    ) -> (EdgeInput, EdgeFlow) {
        use wpinq::plan::IncrementalEngine;
        match engine {
            IncrementalEngine::Sequential => {
                let (input, stream) = wpinq_dataflow::DataflowInput::new();
                (EdgeInput::Sequential(input), EdgeFlow::Sequential(stream))
            }
            IncrementalEngine::Sharded(_) => {
                let (input, stream) = ShardedInput::new(engine.shard_count());
                (
                    EdgeInput::Sharded(input),
                    EdgeFlow::Sharded {
                        stream,
                        expected_edges,
                    },
                )
            }
        }
    }
}

/// The writable end of an [`EdgeFlow`]: edge deltas pushed here propagate through every
/// scorer lowered onto the flow.
pub enum EdgeInput {
    /// Input of the sequential `Stream` graph.
    Sequential(wpinq_dataflow::DataflowInput<Edge>),
    /// Input of the sharded engine.
    Sharded(ShardedInput<Edge>),
}

impl EdgeInput {
    /// Pushes a batch of edge deltas into the flow.
    pub fn push(&self, deltas: &[wpinq_dataflow::Delta<Edge>]) {
        match self {
            EdgeInput::Sequential(input) => input.push(deltas),
            EdgeInput::Sharded(input) => input.push(deltas),
        }
    }

    /// Pushes an entire edge dataset as insertions.
    pub fn push_dataset(&self, data: &wpinq::WeightedDataset<Edge>) {
        match self {
            EdgeInput::Sequential(input) => input.push_dataset(data),
            EdgeInput::Sharded(input) => input.push_dataset(data),
        }
    }
}

/// Anything that reports an incrementally maintained distance to its measurement target.
pub trait DistanceSink {
    /// The maintained `‖Q(A) − m‖₁` for this query.
    fn distance(&self) -> f64;
    /// Recomputes the distance from scratch (drift guard).
    fn recompute_distance(&self) -> f64;
    /// A short human-readable label for reporting.
    fn label(&self) -> &str;
}

/// A labelled [`ScorerHandle`].
pub struct LabelledScorer<T: Record> {
    handle: ScorerHandle<T>,
    label: String,
}

impl<T: Record> DistanceSink for LabelledScorer<T> {
    fn distance(&self) -> f64 {
        self.handle.distance()
    }

    fn recompute_distance(&self) -> f64 {
        self.handle.recompute_distance()
    }

    fn label(&self) -> &str {
        &self.label
    }
}

fn observed_targets<T: Record>(counts: &NoisyCounts<T>) -> HashMap<T, f64> {
    counts
        .iter_observed()
        .map(|(record, weight)| (record.clone(), weight))
        .collect()
}

/// Lowers an analysis plan onto the candidate's edge flow (either engine) and scores it
/// against explicit measurement targets.
fn plan_scorer<T, F>(
    edges: &EdgeFlow,
    epsilon: f64,
    targets: HashMap<T, f64>,
    build: F,
    label: &str,
) -> Box<dyn DistanceSink>
where
    T: Record,
    F: FnOnce(&Plan<Edge>) -> Plan<T>,
{
    let source = EdgeSource::new();
    let measurement = build(source.plan()).noisy_count(epsilon);
    let handle = match edges {
        EdgeFlow::Sequential(stream) => {
            measurement.lower_scorer_targets(&source.bind_stream(stream.clone()), targets)
        }
        EdgeFlow::Sharded {
            stream,
            expected_edges,
        } => {
            let bindings = match expected_edges {
                Some(n) => source.bind_sharded_stream_sized(stream.clone(), *n),
                None => source.bind_sharded_stream(stream.clone()),
            };
            measurement.lower_scorer_targets_sharded(&bindings, targets)
        }
    };
    Box::new(LabelledScorer {
        handle,
        label: label.to_string(),
    })
}

/// Scores the candidate's degree CCDF against a released noisy CCDF.
pub fn degree_ccdf_scorer(
    edges: &EdgeFlow,
    measurement: &NoisyCounts<u64>,
) -> Box<dyn DistanceSink> {
    plan_scorer(
        edges,
        measurement.epsilon(),
        observed_targets(measurement),
        degree_ccdf_plan,
        "degree-ccdf",
    )
}

/// Scores the candidate's (non-increasing) degree sequence against a released measurement.
pub fn degree_sequence_scorer(
    edges: &EdgeFlow,
    measurement: &NoisyCounts<u64>,
) -> Box<dyn DistanceSink> {
    plan_scorer(
        edges,
        measurement.epsilon(),
        observed_targets(measurement),
        degree_sequence_plan,
        "degree-sequence",
    )
}

/// Scores the candidate's Triangles-by-Intersect signal against a released [`TbiMeasurement`].
pub fn tbi_scorer(edges: &EdgeFlow, measurement: &TbiMeasurement) -> Box<dyn DistanceSink> {
    plan_scorer(
        edges,
        measurement.epsilon,
        HashMap::from([((), measurement.noisy_signal)]),
        tbi_plan,
        "triangles-by-intersect",
    )
}

/// Scores the candidate's (bucketed) Triangles-by-Degree weights against a released
/// [`TbdMeasurement`].
pub fn tbd_scorer(edges: &EdgeFlow, measurement: &TbdMeasurement) -> Box<dyn DistanceSink> {
    let bucket = measurement.bucket().max(1);
    plan_scorer(
        edges,
        measurement.epsilon(),
        observed_targets(measurement.counts()),
        |source| tbd_plan(source, bucket),
        "triangles-by-degree",
    )
}

/// Scores the candidate's joint degree distribution against released noisy JDD counts.
pub fn jdd_scorer(
    edges: &EdgeFlow,
    measurement: &NoisyCounts<(u64, u64)>,
) -> Box<dyn DistanceSink> {
    plan_scorer(
        edges,
        measurement.epsilon(),
        observed_targets(measurement),
        jdd_plan,
        "joint-degree-distribution",
    )
}

/// The expected JDD weight for a degree pair, re-exported for reporting convenience.
pub fn jdd_target_weight(da: u64, db: u64) -> f64 {
    jdd_record_weight(da, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wpinq::PrivacyBudget;
    use wpinq_analyses::degree::degree_ccdf_query;
    use wpinq_analyses::edges::{symmetric_edge_dataset, GraphEdges};
    use wpinq_analyses::tbi::tbi_exact_signal;
    use wpinq_dataflow::DataflowInput;
    use wpinq_graph::Graph;

    fn toy_graph() -> Graph {
        Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn tbi_scorer_distance_is_noise_only_when_candidate_is_the_truth() {
        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let mut rng = StdRng::seed_from_u64(1);
        let measurement = TbiMeasurement::measure(&edges.queryable(), 1e6, &mut rng).unwrap();

        let (input, stream) = DataflowInput::<Edge>::new();
        let sink = tbi_scorer(&EdgeFlow::Sequential(stream), &measurement);
        // Before loading anything the distance is the full measured signal.
        assert!((sink.distance() - measurement.noisy_signal.abs()).abs() < 1e-9);
        input.push_dataset(&symmetric_edge_dataset(&g));
        // Loading the true graph leaves only the (tiny) measurement noise.
        assert!(sink.distance() < 1e-3, "distance {}", sink.distance());
        assert!((sink.distance() - sink.recompute_distance()).abs() < 1e-9);
        assert_eq!(sink.label(), "triangles-by-intersect");
        // And the exact signal matches the analyses helper.
        assert!((tbi_exact_signal(&g) - 7.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ccdf_scorer_matches_batch_query_distance() {
        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let mut rng = StdRng::seed_from_u64(2);
        let measurement = degree_ccdf_query(&edges.queryable())
            .noisy_count(0.5, &mut rng)
            .unwrap();

        let (input, stream) = DataflowInput::<Edge>::new();
        let sink = degree_ccdf_scorer(&EdgeFlow::Sequential(stream), &measurement);
        input.push_dataset(&symmetric_edge_dataset(&g));
        // The candidate equals the measured graph, so the distance equals the total noise.
        let expected = measurement.l1_distance(degree_ccdf_query(&edges.queryable()).inspect());
        assert!(
            (sink.distance() - expected).abs() < 1e-9,
            "incremental {} vs batch {expected}",
            sink.distance()
        );
    }

    #[test]
    fn tbd_scorer_reacts_to_edge_changes() {
        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let mut rng = StdRng::seed_from_u64(3);
        let measurement = TbdMeasurement::measure(&edges.queryable(), 1e6, 1, &mut rng).unwrap();

        let (input, stream) = DataflowInput::<Edge>::new();
        let sink = tbd_scorer(&EdgeFlow::Sequential(stream), &measurement);
        input.push_dataset(&symmetric_edge_dataset(&g));
        let with_truth = sink.distance();
        assert!(with_truth < 1e-3);
        // Remove the closing edge of the triangle: the distance jumps to the full signal.
        input.push(&[((0, 2), -1.0), ((2, 0), -1.0)]);
        assert!(sink.distance() > with_truth + 0.1);
        assert!((sink.distance() - sink.recompute_distance()).abs() < 1e-9);
    }

    #[test]
    fn jdd_scorer_initialises_to_measured_mass() {
        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let mut rng = StdRng::seed_from_u64(4);
        let measurement = wpinq_analyses::jdd::jdd_query(&edges.queryable())
            .noisy_count(1e6, &mut rng)
            .unwrap();
        let (input, stream) = DataflowInput::<Edge>::new();
        let sink = jdd_scorer(&EdgeFlow::Sequential(stream), &measurement);
        assert!(sink.distance() > 0.0);
        input.push_dataset(&symmetric_edge_dataset(&g));
        assert!(sink.distance() < 1e-3);
        assert!((jdd_target_weight(2, 3) - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn optimized_lowering_scores_identically_to_the_unoptimized_lowering() {
        use wpinq::plan::OptimizeLevel;
        use wpinq_analyses::tbi::tbi_plan;

        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let mut rng = StdRng::seed_from_u64(11);
        let measurement = TbiMeasurement::measure(&edges.queryable(), 1e4, &mut rng).unwrap();
        let targets = HashMap::from([((), measurement.noisy_signal)]);

        let mut handles = Vec::new();
        let mut inputs = Vec::new();
        for level in [OptimizeLevel::None, OptimizeLevel::Full] {
            let source = EdgeSource::new();
            let annotated = tbi_plan(source.plan()).noisy_count(measurement.epsilon);
            let (input, stream) = DataflowInput::<Edge>::new();
            let handle = annotated
                .plan()
                .lower_opt(&source.bind_stream(stream), level)
                .l1_scorer(targets.clone());
            handles.push(handle);
            inputs.push(input);
        }
        for input in &inputs {
            input.push_dataset(&symmetric_edge_dataset(&g));
        }
        // The optimizer may reshape the lowered graph but never its maintained distance.
        assert!((handles[0].distance() - handles[1].distance()).abs() < 1e-12);
        assert!(
            (handles[1].distance() - handles[1].recompute_distance()).abs() < 1e-9,
            "optimized lowering drifted from its own recomputation"
        );
    }

    #[test]
    fn scorers_agree_bitwise_across_incremental_engines() {
        use wpinq::plan::IncrementalEngine;
        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let mut rng = StdRng::seed_from_u64(21);
        let measurement = TbdMeasurement::measure(&edges.queryable(), 1e4, 1, &mut rng).unwrap();
        let engines = [
            IncrementalEngine::Sequential,
            IncrementalEngine::Sharded(1),
            IncrementalEngine::Sharded(2),
            IncrementalEngine::Sharded(8),
        ];
        let mut flows = Vec::new();
        for engine in engines {
            let (input, flow) = EdgeFlow::create(engine);
            let sink = tbd_scorer(&flow, &measurement);
            input.push_dataset(&symmetric_edge_dataset(&g));
            flows.push((input, sink));
        }
        let reference = flows[0].1.distance();
        for (_, sink) in &flows[1..] {
            assert_eq!(reference.to_bits(), sink.distance().to_bits());
        }
        // Remove the triangle-closing edge everywhere: the engines move in lock-step.
        for (input, _) in &flows {
            input.push(&[((0, 2), -1.0), ((2, 0), -1.0)]);
        }
        let reference = flows[0].1.distance();
        assert!(reference > 0.1);
        for (_, sink) in &flows[1..] {
            assert_eq!(reference.to_bits(), sink.distance().to_bits());
        }
    }

    #[test]
    fn optimizer_level_and_engine_choice_commute_on_scorer_distances() {
        // The satellite guarantee: seeded scoring is identical across
        // `OptimizeLevel::{None, Full}` × incremental engine {sequential, sharded}.
        use wpinq::plan::{IncrementalEngine, OptimizeLevel};
        use wpinq_analyses::tbi::tbi_plan;
        use wpinq_dataflow::ShardedInput;

        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let mut rng = StdRng::seed_from_u64(23);
        let measurement = TbiMeasurement::measure(&edges.queryable(), 1e4, &mut rng).unwrap();
        let targets = HashMap::from([((), measurement.noisy_signal)]);

        let mut handles = Vec::new();
        let mut push_truth: Vec<Box<dyn Fn()>> = Vec::new();
        for level in [OptimizeLevel::None, OptimizeLevel::Full] {
            for engine in [IncrementalEngine::Sequential, IncrementalEngine::Sharded(2)] {
                let source = EdgeSource::new();
                let annotated = tbi_plan(source.plan()).noisy_count(measurement.epsilon);
                match engine {
                    IncrementalEngine::Sequential => {
                        let (input, stream) = DataflowInput::<Edge>::new();
                        let handle = annotated
                            .plan()
                            .lower_opt(&source.bind_stream(stream), level)
                            .l1_scorer(targets.clone());
                        handles.push(handle);
                        let g = g.clone();
                        push_truth.push(Box::new(move || {
                            input.push_dataset(&symmetric_edge_dataset(&g))
                        }));
                    }
                    IncrementalEngine::Sharded(n) => {
                        let (input, stream) = ShardedInput::<Edge>::new(n);
                        let handle = annotated
                            .plan()
                            .lower_sharded_opt(&source.bind_sharded_stream(stream), level)
                            .l1_scorer(targets.clone());
                        handles.push(handle);
                        let g = g.clone();
                        push_truth.push(Box::new(move || {
                            input.push_dataset(&symmetric_edge_dataset(&g))
                        }));
                    }
                }
            }
        }
        for push in &push_truth {
            push();
        }
        let reference = handles[0].distance();
        for handle in &handles[1..] {
            assert_eq!(
                reference.to_bits(),
                handle.distance().to_bits(),
                "scorer distance depends on optimize level × engine"
            );
        }
    }

    #[test]
    fn scorer_epsilon_annotation_matches_the_released_measurement() {
        // The Measurement sink carries the ε the release was taken at, so the scorer and
        // the accountant agree on the measurement's identity.
        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let mut rng = StdRng::seed_from_u64(5);
        let released = degree_ccdf_query(&edges.queryable())
            .noisy_count(0.25, &mut rng)
            .unwrap();
        assert_eq!(released.epsilon(), 0.25);
        let source = EdgeSource::new();
        let measurement = degree_ccdf_plan(source.plan()).noisy_count(released.epsilon());
        let id = source.plan().input_id().unwrap();
        assert!((measurement.cost_for(id) - 0.25).abs() < 1e-12);
    }
}
