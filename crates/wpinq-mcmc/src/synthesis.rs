//! The end-to-end graph-synthesis workflow of Section 5.1, as used by the experiments in
//! Sections 5.2 and 5.3.
//!
//! 1. **Measure.** Take the Phase-1 degree measurements (degree sequence, degree CCDF, node
//!    count; cost 3ε) plus one triangle measurement (TbD at 9ε or TbI at 4ε) from the
//!    protected graph. After this the protected graph is never touched again.
//! 2. **Seed.** Fit the degree measurements and generate a random graph with that degree
//!    sequence.
//! 3. **MCMC.** Run the edge-swap Metropolis–Hastings walk, scoring candidates by
//!    `‖Q(A) − m‖₁` maintained incrementally, and record the trajectory of triangle count
//!    and assortativity on the synthetic graph.

use std::time::Instant;

use rand::Rng;

use wpinq::{BudgetError, PrivacyBudget, WpinqError};
use wpinq_analyses::degree::DegreeMeasurements;
use wpinq_analyses::edges::GraphEdges;
use wpinq_analyses::tbi::TbiMeasurement;
use wpinq_analyses::triangles::TbdMeasurement;
use wpinq_graph::{stats, Graph};

use crate::graph_candidate::GraphCandidate;
use crate::metropolis::{CandidateState, MetropolisHastings, StepOutcome};
use crate::scorers;
use crate::seed::seed_graph_from_measurements;

/// Which triangle query drives Phase 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriangleQuery {
    /// Triangles-by-Degree with the given degree bucket size (Section 5.2; cost 9ε).
    TbD {
        /// Degrees are divided by this bucket size before being reported.
        bucket: u64,
    },
    /// Triangles-by-Intersect (Section 5.3; cost 4ε).
    TbI,
}

impl TriangleQuery {
    /// The privacy multiplicity of the query (how many times it uses the edges).
    pub fn multiplicity(&self) -> u32 {
        match self {
            TriangleQuery::TbD { .. } => 9,
            TriangleQuery::TbI => 4,
        }
    }
}

/// Configuration of a synthesis run.
#[derive(Debug, Clone, Copy)]
pub struct SynthesisConfig {
    /// The per-measurement ε (the paper uses 0.1 in the headline experiments).
    pub epsilon: f64,
    /// The MCMC focusing exponent (the paper uses 10 000).
    pub pow: f64,
    /// Number of MCMC steps to run.
    pub mcmc_steps: u64,
    /// Record a trajectory point every this many steps (0 = only at the end).
    pub record_every: u64,
    /// Which triangle query to fit.
    pub triangle_query: TriangleQuery,
    /// Whether to also score the degree sequence and CCDF during MCMC (harmless — the walk
    /// preserves degrees — but useful when experimenting with other random walks).
    pub score_degrees: bool,
    /// Worker-thread count for the measurement phase's batch evaluation: `0` defers to the
    /// `WPINQ_THREADS` environment variable, `1` forces the sequential executor, `n > 1`
    /// evaluates on an `n`-way [`ShardedExecutor`](wpinq::plan::ShardedExecutor). Every
    /// setting produces bitwise-identical measurements (given the same RNG state).
    pub threads: usize,
    /// State-shard count for the **incremental engine** driving the MCMC walk: `0`
    /// defers to the `WPINQ_INC_SHARDS` environment variable (default: the sequential
    /// `Stream` graph), `n ≥ 1` runs the hash-partitioned sharded engine with `n`
    /// shards. Every setting propagates swaps bitwise identically, so seeded
    /// trajectories are engine-independent.
    pub inc_shards: usize,
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig {
            epsilon: 0.1,
            pow: 10_000.0,
            mcmc_steps: 50_000,
            record_every: 5_000,
            triangle_query: TriangleQuery::TbI,
            score_degrees: false,
            threads: 0,
            inc_shards: 0,
        }
    }
}

impl SynthesisConfig {
    /// Builder-style override of the measurement-phase worker-thread count (see
    /// [`threads`](Self::threads)).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Builder-style override of the incremental-engine shard count (see
    /// [`inc_shards`](Self::inc_shards)).
    pub fn with_inc_shards(mut self, inc_shards: usize) -> Self {
        self.inc_shards = inc_shards;
        self
    }

    /// The incremental engine the MCMC walk runs on under this configuration.
    pub fn incremental_engine(&self) -> wpinq::plan::IncrementalEngine {
        wpinq::plan::IncrementalEngine::for_shards(self.inc_shards)
    }

    /// The total privacy cost of the workflow: 3ε for the seed measurements plus the
    /// triangle query's multiplicity times ε (7ε for TbI, 12ε for TbD — the paper's 0.7 and
    /// 1.2 at ε = 0.1).
    pub fn total_privacy_cost(&self) -> f64 {
        (3 + self.triangle_query.multiplicity()) as f64 * self.epsilon
    }
}

/// One recorded point of the MCMC trajectory (the series Figures 3 and 4 plot).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryPoint {
    /// MCMC step at which the snapshot was taken.
    pub step: u64,
    /// Triangle count of the synthetic graph at that step.
    pub triangles: u64,
    /// Assortativity of the synthetic graph at that step.
    pub assortativity: f64,
    /// The scoring energy `‖Q(A) − m‖₁` at that step.
    pub energy: f64,
}

/// The result of a synthesis run.
#[derive(Debug)]
pub struct SynthesisResult {
    /// The final synthetic graph.
    pub synthetic: Graph,
    /// Statistics of the seed graph (step 0 of the trajectory).
    pub seed_summary: stats::GraphSummary,
    /// Statistics of the final synthetic graph.
    pub final_summary: stats::GraphSummary,
    /// Trajectory snapshots, including step 0 and the final step.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Number of accepted swaps.
    pub accepted: u64,
    /// Number of rejected proposals (including invalid swaps).
    pub rejected: u64,
    /// Total privacy cost charged against the protected graph.
    pub privacy_cost: f64,
    /// MCMC steps per second over the whole run.
    pub steps_per_second: f64,
}

/// Runs the full measure → seed → MCMC workflow against a secret graph.
///
/// The secret graph is only used to take the differentially-private measurements at the
/// start; everything after that operates on released values and public synthetic graphs.
pub fn synthesize<R: Rng + ?Sized>(
    secret: &Graph,
    config: &SynthesisConfig,
    rng: &mut R,
) -> Result<SynthesisResult, WpinqError> {
    let budget = PrivacyBudget::new(config.total_privacy_cost() + 1e-9);
    let edges = GraphEdges::new(secret, budget);
    // The two backend knobs select the batch execution strategy for the measurement
    // phase and the incremental engine for the walk; every strategy on either side
    // computes bitwise-identical data, so neither can perturb releases or trajectories.
    let backend = wpinq::plan::PairedBackend::new(
        wpinq::plan::executor_for_threads(config.threads),
        config.incremental_engine(),
    );
    let queryable = edges.queryable().with_backend(&backend);

    // Phase 1: degree measurements and seed graph (3ε).
    let degree_measurements = DegreeMeasurements::measure(&queryable, config.epsilon, rng)?;
    let seed = seed_graph_from_measurements(&degree_measurements, rng);

    // Phase 2 measurement: the triangle query.
    enum TriangleMeasurement {
        TbD(TbdMeasurement),
        TbI(TbiMeasurement),
    }
    let triangle_measurement = match config.triangle_query {
        TriangleQuery::TbD { bucket } => TriangleMeasurement::TbD(TbdMeasurement::measure(
            &queryable,
            config.epsilon,
            bucket,
            rng,
        )?),
        TriangleQuery::TbI => {
            TriangleMeasurement::TbI(TbiMeasurement::measure(&queryable, config.epsilon, rng)?)
        }
    };
    let privacy_cost = edges.budget().spent();

    // Build the candidate with its incremental scorers on the configured engine. The
    // secret graph is not used below.
    let score_degrees = config.score_degrees;
    let candidate =
        GraphCandidate::with_engine(seed.clone(), queryable.incremental_engine(), |flow| {
            let mut sinks = Vec::new();
            match &triangle_measurement {
                TriangleMeasurement::TbD(m) => sinks.push(scorers::tbd_scorer(flow, m)),
                TriangleMeasurement::TbI(m) => sinks.push(scorers::tbi_scorer(flow, m)),
            }
            if score_degrees {
                sinks.push(scorers::degree_ccdf_scorer(flow, &degree_measurements.ccdf));
                sinks.push(scorers::degree_sequence_scorer(
                    flow,
                    &degree_measurements.sequence,
                ));
            }
            sinks
        });

    let result = run_mcmc(candidate, seed, config, privacy_cost, rng);
    Ok(result)
}

/// Registry name of the cumulative MCMC step counter.
pub const MCMC_STEPS_METRIC: &str = "wpinq_mcmc_steps_total";
/// Registry name of the cumulative accepted-swap counter.
pub const MCMC_ACCEPTED_METRIC: &str = "wpinq_mcmc_accepted_total";
/// Registry name of the scorer-distance (energy) gauge of the current walk.
pub const MCMC_ENERGY_METRIC: &str = "wpinq_mcmc_energy";
/// Registry name of the steps-per-second gauge of the current walk.
pub const MCMC_STEPS_PER_SECOND_METRIC: &str = "wpinq_mcmc_steps_per_second";
/// Registry name of the acceptance-ratio gauge of the current walk.
pub const MCMC_ACCEPTANCE_RATIO_METRIC: &str = "wpinq_mcmc_acceptance_ratio";

/// Publishes one MCMC progress report onto the telemetry registry. Called at the
/// trajectory record points and once at run end — never per step, so the walk's hot
/// loop carries zero telemetry cost. Counters take the *delta* since the previous
/// report (they are process-global and outlive any one run); gauges describe the
/// current walk. Metric handles are cached after first use.
fn report_progress(
    new_steps: u64,
    new_accepted: u64,
    step: u64,
    accepted: u64,
    energy: f64,
    elapsed_secs: f64,
) {
    use std::sync::OnceLock;
    use wpinq_telemetry::{registry, Counter, Gauge};
    struct Handles {
        steps: std::sync::Arc<Counter>,
        accepted: std::sync::Arc<Counter>,
        energy: std::sync::Arc<Gauge>,
        steps_per_second: std::sync::Arc<Gauge>,
        acceptance_ratio: std::sync::Arc<Gauge>,
    }
    static HANDLES: OnceLock<Handles> = OnceLock::new();
    let handles = HANDLES.get_or_init(|| Handles {
        steps: registry().counter(
            MCMC_STEPS_METRIC,
            &[],
            "Metropolis-Hastings steps taken across all synthesis runs.",
        ),
        accepted: registry().counter(
            MCMC_ACCEPTED_METRIC,
            &[],
            "Accepted swaps across all synthesis runs.",
        ),
        energy: registry().gauge(
            MCMC_ENERGY_METRIC,
            &[],
            "Scorer distance (L1 energy) of the current candidate graph.",
        ),
        steps_per_second: registry().gauge(
            MCMC_STEPS_PER_SECOND_METRIC,
            &[],
            "Throughput of the current MCMC walk.",
        ),
        acceptance_ratio: registry().gauge(
            MCMC_ACCEPTANCE_RATIO_METRIC,
            &[],
            "Accepted fraction of proposals in the current MCMC walk so far.",
        ),
    });
    handles.steps.add(new_steps);
    handles.accepted.add(new_accepted);
    handles.energy.set(energy);
    if elapsed_secs > 0.0 {
        handles.steps_per_second.set(step as f64 / elapsed_secs);
    }
    if step > 0 {
        handles.acceptance_ratio.set(accepted as f64 / step as f64);
    }
}

/// Runs the MCMC phase over an already-constructed candidate (used by [`synthesize`] and by
/// benches that want to time the walk in isolation).
pub fn run_mcmc<R: Rng + ?Sized>(
    mut candidate: GraphCandidate,
    seed: Graph,
    config: &SynthesisConfig,
    privacy_cost: f64,
    rng: &mut R,
) -> SynthesisResult {
    let driver = MetropolisHastings::new(config.epsilon, config.pow);
    let seed_summary = stats::summary(&seed);
    let mut trajectory = vec![TrajectoryPoint {
        step: 0,
        triangles: seed_summary.triangles,
        assortativity: seed_summary.assortativity,
        energy: candidate.energy(),
    }];

    let mut accepted = 0u64;
    let mut rejected = 0u64;
    let mut reported = (0u64, 0u64);
    let started = Instant::now();
    for step in 1..=config.mcmc_steps {
        match driver.step(&mut candidate, rng) {
            StepOutcome::Accepted => accepted += 1,
            StepOutcome::Rejected | StepOutcome::NoProposal => rejected += 1,
        }
        if config.record_every > 0 && step % config.record_every == 0 && step != config.mcmc_steps {
            trajectory.push(TrajectoryPoint {
                step,
                triangles: stats::triangle_count(candidate.graph()),
                assortativity: stats::assortativity(candidate.graph()),
                energy: candidate.energy(),
            });
            // Telemetry rides the existing record cadence (the hot step loop itself
            // stays untouched): progress counters plus walk-health gauges.
            report_progress(
                step - reported.0,
                accepted - reported.1,
                step,
                accepted,
                candidate.energy(),
                started.elapsed().as_secs_f64(),
            );
            reported = (step, accepted);
        }
    }
    let elapsed = started.elapsed().as_secs_f64().max(1e-9);
    report_progress(
        config.mcmc_steps - reported.0,
        accepted - reported.1,
        config.mcmc_steps,
        accepted,
        candidate.energy(),
        elapsed,
    );

    let final_summary = stats::summary(candidate.graph());
    trajectory.push(TrajectoryPoint {
        step: config.mcmc_steps,
        triangles: final_summary.triangles,
        assortativity: final_summary.assortativity,
        energy: candidate.energy(),
    });

    SynthesisResult {
        synthetic: candidate.into_graph(),
        seed_summary,
        final_summary,
        trajectory,
        accepted,
        rejected,
        privacy_cost,
        steps_per_second: config.mcmc_steps as f64 / elapsed,
    }
}

/// Convenience: the error type raised when a synthesis run exceeds its planned budget
/// (should not happen — the workflow sizes the budget from the configuration).
pub fn budget_error(requested: f64, remaining: f64) -> WpinqError {
    WpinqError::BudgetExceeded(BudgetError {
        requested,
        remaining,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wpinq_graph::generators;

    #[test]
    fn privacy_cost_matches_the_paper() {
        let tbi = SynthesisConfig {
            epsilon: 0.1,
            triangle_query: TriangleQuery::TbI,
            ..SynthesisConfig::default()
        };
        assert!((tbi.total_privacy_cost() - 0.7).abs() < 1e-12);
        let tbd = SynthesisConfig {
            epsilon: 0.1,
            triangle_query: TriangleQuery::TbD { bucket: 20 },
            ..SynthesisConfig::default()
        };
        assert!((tbd.total_privacy_cost() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn synthesis_recovers_triangles_on_a_small_graph() {
        let mut rng = StdRng::seed_from_u64(11);
        let secret = generators::powerlaw_cluster(80, 3, 0.9, &mut rng);
        let config = SynthesisConfig {
            epsilon: 2.0,
            pow: 1_000.0,
            mcmc_steps: 6_000,
            record_every: 2_000,
            triangle_query: TriangleQuery::TbI,
            score_degrees: false,
            threads: 0,
            inc_shards: 0,
        };
        let result = synthesize(&secret, &config, &mut rng).unwrap();
        // The privacy cost is exactly what the configuration promised.
        assert!((result.privacy_cost - config.total_privacy_cost()).abs() < 1e-9);
        // The seed has (far) fewer triangles than the secret graph; MCMC recovers a chunk.
        let secret_triangles = stats::triangle_count(&secret);
        assert!(result.seed_summary.triangles < secret_triangles);
        assert!(
            result.final_summary.triangles > result.seed_summary.triangles,
            "triangles did not increase: {} -> {}",
            result.seed_summary.triangles,
            result.final_summary.triangles
        );
        // The trajectory includes the endpoints and is recorded in step order.
        assert!(result.trajectory.len() >= 3);
        assert_eq!(result.trajectory.first().unwrap().step, 0);
        assert_eq!(result.trajectory.last().unwrap().step, config.mcmc_steps);
        assert!(result.trajectory.windows(2).all(|w| w[0].step < w[1].step));
        assert!(result.steps_per_second > 0.0);
        assert!(result.accepted > 0);
        // The edge-swap walk preserves the seed's degree structure.
        assert_eq!(result.final_summary.edges, result.seed_summary.edges);
        assert_eq!(
            result.final_summary.max_degree,
            result.seed_summary.max_degree
        );
        assert_eq!(
            result.final_summary.sum_degree_squares,
            result.seed_summary.sum_degree_squares
        );
    }

    #[test]
    fn tbd_synthesis_runs_and_reports_energy() {
        let mut rng = StdRng::seed_from_u64(13);
        let secret = generators::powerlaw_cluster(50, 3, 0.8, &mut rng);
        let config = SynthesisConfig {
            epsilon: 1.0,
            pow: 1_000.0,
            mcmc_steps: 1_000,
            record_every: 500,
            triangle_query: TriangleQuery::TbD { bucket: 4 },
            score_degrees: true,
            threads: 0,
            inc_shards: 0,
        };
        let result = synthesize(&secret, &config, &mut rng).unwrap();
        assert!((result.privacy_cost - 12.0).abs() < 1e-9);
        assert!(result.trajectory.iter().all(|p| p.energy.is_finite()));
    }
}
