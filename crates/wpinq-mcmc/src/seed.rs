//! Phase 1 of the graph-synthesis workflow (Section 5.1): fit the released degree
//! measurements and generate a random "seed" graph with that degree sequence.

use rand::Rng;
use wpinq_analyses::degree::DegreeMeasurements;
use wpinq_analyses::postprocess::fit_degree_sequence;
use wpinq_graph::{generators, Graph};

/// Fits an integer, non-increasing degree sequence to the released degree measurements
/// using the joint CCDF/degree-sequence grid fit of Section 3.1.
///
/// The sequence length is taken from the noisy node count; the degree axis is capped at the
/// (rounded, slack-padded) largest noisy degree.
pub fn fit_seed_degree_sequence(measurements: &DegreeMeasurements) -> Vec<usize> {
    let n = measurements.estimated_nodes();
    let seq = measurements.sequence_vector(n);
    // A generous cap on the maximum degree: the largest noisy rank-0 degree plus slack for
    // noise, bounded by the number of nodes.
    let max_degree_guess = seq
        .iter()
        .fold(0.0f64, |acc, v| acc.max(*v))
        .round()
        .max(1.0) as usize;
    let cap = (max_degree_guess + 5).min(n.saturating_sub(1).max(1));
    let ccdf = measurements.ccdf_vector(cap);
    let mut fitted = fit_degree_sequence(&ccdf, &seq);
    // Drop trailing zero-degree ranks: they correspond to noise beyond the true node count.
    while fitted.last() == Some(&0) {
        fitted.pop();
    }
    fitted
}

/// Generates a random simple graph whose degree sequence approximates `sequence`
/// (Phase 1's seed generator).
pub fn seed_graph_from_sequence<R: Rng + ?Sized>(sequence: &[usize], rng: &mut R) -> Graph {
    generators::configuration_like(sequence, rng)
}

/// The full Phase 1: fit the degree measurements, then generate the seed graph.
pub fn seed_graph_from_measurements<R: Rng + ?Sized>(
    measurements: &DegreeMeasurements,
    rng: &mut R,
) -> Graph {
    let sequence = fit_seed_degree_sequence(measurements);
    seed_graph_from_sequence(&sequence, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wpinq::PrivacyBudget;
    use wpinq_analyses::edges::GraphEdges;
    use wpinq_graph::stats;

    fn secret_graph(seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::powerlaw_cluster(150, 3, 0.6, &mut rng)
    }

    #[test]
    fn noise_free_fit_recovers_the_exact_degree_sequence() {
        let g = secret_graph(1);
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let mut rng = StdRng::seed_from_u64(2);
        let m = DegreeMeasurements::measure(&edges.queryable(), 1e7, &mut rng).unwrap();
        let fitted = fit_seed_degree_sequence(&m);
        let truth = stats::degree_sequence(&g);
        assert_eq!(fitted.len(), truth.len());
        assert_eq!(fitted, truth);
    }

    #[test]
    fn noisy_fit_is_close_to_the_true_sequence() {
        let g = secret_graph(3);
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let mut rng = StdRng::seed_from_u64(4);
        let m = DegreeMeasurements::measure(&edges.queryable(), 1.0, &mut rng).unwrap();
        let fitted = fit_seed_degree_sequence(&m);
        let truth = stats::degree_sequence(&g);
        let err = wpinq_analyses::postprocess::sequence_rmse(&fitted, &truth);
        assert!(err < 5.0, "rmse {err} too large for epsilon 1.0");
        // The fit is a valid non-increasing sequence.
        assert!(fitted.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn seed_graph_matches_the_fitted_sequence() {
        let g = secret_graph(5);
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let mut rng = StdRng::seed_from_u64(6);
        let m = DegreeMeasurements::measure(&edges.queryable(), 1e7, &mut rng).unwrap();
        let seed = seed_graph_from_measurements(&m, &mut rng);
        // Node and edge counts are within a few percent of the secret graph's.
        assert!(
            (seed.num_nodes() as f64 - g.num_nodes() as f64).abs() < 0.05 * g.num_nodes() as f64
        );
        let edge_ratio = seed.num_edges() as f64 / g.num_edges() as f64;
        assert!(
            edge_ratio > 0.9 && edge_ratio <= 1.01,
            "edge ratio {edge_ratio}"
        );
        // But the seed is a *random* graph: it should not reproduce the triangle richness.
        assert!(stats::triangle_count(&seed) < stats::triangle_count(&g));
    }
}
