//! A generic Metropolis–Hastings engine (Section 4.2).
//!
//! The engine walks over candidate states, accepting a proposed move with probability
//! `min(1, Score(next)/Score(current))` where `Score(A) = exp(−ε·pow·‖Q(A) − m‖₁)`. All
//! arithmetic is done on log-scores, so the focusing parameter `pow` (10 000 in the paper's
//! experiments) never overflows.

use rand::Rng;

/// A state the Metropolis–Hastings engine can walk over.
///
/// The contract mirrors how the incremental engine is used: proposing is cheap, `apply`
/// mutates the state (and its incrementally-maintained energy), and `undo` restores it when
/// the move is rejected.
pub trait CandidateState {
    /// A reversible move on the state.
    type Move;

    /// Proposes a random move, or `None` when no valid move could be found this iteration.
    fn propose<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Self::Move>;

    /// Applies the move and returns the new energy `‖Q(A) − m‖₁`.
    fn apply(&mut self, mv: &Self::Move) -> f64;

    /// Undoes a move previously applied with [`apply`](Self::apply).
    fn undo(&mut self, mv: &Self::Move);

    /// The current energy `‖Q(A) − m‖₁` (lower is better).
    fn energy(&self) -> f64;
}

/// Outcome of a single MCMC step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The proposed move was accepted and the state keeps it.
    Accepted,
    /// The proposed move was applied, scored, and rolled back.
    Rejected,
    /// No valid move could be proposed.
    NoProposal,
}

/// Aggregate statistics of an MCMC run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct McmcStats {
    /// Number of accepted moves.
    pub accepted: u64,
    /// Number of rejected moves.
    pub rejected: u64,
    /// Number of iterations in which no valid move was proposed.
    pub no_proposal: u64,
    /// Energy after the final step.
    pub final_energy: f64,
}

impl McmcStats {
    /// Total number of iterations attempted.
    pub fn steps(&self) -> u64 {
        self.accepted + self.rejected + self.no_proposal
    }

    /// Fraction of proposals accepted (0 when nothing was proposed).
    pub fn acceptance_rate(&self) -> f64 {
        let proposals = self.accepted + self.rejected;
        if proposals == 0 {
            0.0
        } else {
            self.accepted as f64 / proposals as f64
        }
    }
}

/// The Metropolis–Hastings driver with the paper's scoring function.
#[derive(Debug, Clone, Copy)]
pub struct MetropolisHastings {
    /// The ε the measurements were taken with (appears in the posterior density).
    pub epsilon: f64,
    /// The focusing exponent `pow`; larger values make the walk greedier (Section 4.2).
    pub pow: f64,
}

impl MetropolisHastings {
    /// Creates a driver with the given ε and focusing exponent.
    pub fn new(epsilon: f64, pow: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon.is_finite(),
            "epsilon must be positive"
        );
        assert!(pow > 0.0 && pow.is_finite(), "pow must be positive");
        MetropolisHastings { epsilon, pow }
    }

    /// The log-score of a state with the given energy: `−ε·pow·energy`.
    pub fn log_score(&self, energy: f64) -> f64 {
        -self.epsilon * self.pow * energy
    }

    /// Performs one step: propose, apply, accept or roll back.
    pub fn step<S: CandidateState, R: Rng + ?Sized>(
        &self,
        state: &mut S,
        rng: &mut R,
    ) -> StepOutcome {
        let Some(mv) = state.propose(rng) else {
            return StepOutcome::NoProposal;
        };
        let old_energy = state.energy();
        let new_energy = state.apply(&mv);
        let log_ratio = self.log_score(new_energy) - self.log_score(old_energy);
        if log_ratio >= 0.0 {
            return StepOutcome::Accepted;
        }
        let u: f64 = rng.gen_range(0.0f64..1.0);
        if u.ln() < log_ratio {
            StepOutcome::Accepted
        } else {
            state.undo(&mv);
            StepOutcome::Rejected
        }
    }

    /// Runs `steps` iterations, returning aggregate statistics.
    pub fn run<S: CandidateState, R: Rng + ?Sized>(
        &self,
        state: &mut S,
        steps: u64,
        rng: &mut R,
    ) -> McmcStats {
        let mut stats = McmcStats::default();
        for _ in 0..steps {
            match self.step(state, rng) {
                StepOutcome::Accepted => stats.accepted += 1,
                StepOutcome::Rejected => stats.rejected += 1,
                StepOutcome::NoProposal => stats.no_proposal += 1,
            }
        }
        stats.final_energy = state.energy();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A toy candidate: a vector of integers scored by L1 distance to a target vector; the
    /// move picks one coordinate and nudges it by ±1.
    struct VectorState {
        values: Vec<i64>,
        target: Vec<i64>,
    }

    impl VectorState {
        fn distance(&self) -> f64 {
            self.values
                .iter()
                .zip(&self.target)
                .map(|(v, t)| (v - t).abs() as f64)
                .sum()
        }
    }

    impl CandidateState for VectorState {
        type Move = (usize, i64);

        fn propose<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<Self::Move> {
            let idx = rng.gen_range(0..self.values.len());
            let delta = if rng.gen::<bool>() { 1 } else { -1 };
            Some((idx, delta))
        }

        fn apply(&mut self, mv: &Self::Move) -> f64 {
            self.values[mv.0] += mv.1;
            self.distance()
        }

        fn undo(&mut self, mv: &Self::Move) {
            self.values[mv.0] -= mv.1;
        }

        fn energy(&self) -> f64 {
            self.distance()
        }
    }

    #[test]
    fn greedy_walk_converges_to_the_target() {
        let mut state = VectorState {
            values: vec![0; 8],
            target: vec![5, -3, 2, 7, 0, 1, -4, 9],
        };
        let mut rng = StdRng::seed_from_u64(1);
        let driver = MetropolisHastings::new(0.5, 10_000.0);
        let stats = driver.run(&mut state, 5_000, &mut rng);
        assert!(stats.final_energy < 1.0, "energy {}", stats.final_energy);
        assert_eq!(state.values, state.target);
        assert!(stats.acceptance_rate() > 0.0);
    }

    #[test]
    fn small_pow_accepts_uphill_moves() {
        // With a tiny focusing exponent the walk is nearly free and accepts most proposals,
        // including energy-increasing ones.
        let mut state = VectorState {
            values: vec![0; 4],
            target: vec![0, 0, 0, 0],
        };
        let mut rng = StdRng::seed_from_u64(2);
        let driver = MetropolisHastings::new(0.1, 0.01);
        let stats = driver.run(&mut state, 2_000, &mut rng);
        assert!(
            stats.acceptance_rate() > 0.8,
            "acceptance {}",
            stats.acceptance_rate()
        );
        assert!(stats.final_energy > 0.0);
    }

    #[test]
    fn large_pow_is_effectively_greedy() {
        // With pow = 10⁴ (the paper's setting) an uphill move of size 1 has log-ratio
        // −ε·pow ≈ −10³, which is never accepted.
        let driver = MetropolisHastings::new(0.1, 10_000.0);
        assert!(driver.log_score(1.0) - driver.log_score(0.0) < -700.0);
    }

    #[test]
    fn rejected_moves_are_rolled_back() {
        let mut state = VectorState {
            values: vec![0, 0],
            target: vec![0, 0],
        };
        let mut rng = StdRng::seed_from_u64(3);
        let driver = MetropolisHastings::new(1.0, 10_000.0);
        let stats = driver.run(&mut state, 500, &mut rng);
        // Already optimal: every move is uphill and must be rejected, leaving the state put.
        assert_eq!(state.values, vec![0, 0]);
        assert_eq!(stats.accepted, 0);
        assert_eq!(stats.rejected, 500);
        assert_eq!(stats.steps(), 500);
    }

    #[test]
    #[should_panic]
    fn invalid_parameters_are_rejected() {
        let _ = MetropolisHastings::new(0.0, 1.0);
    }
}
