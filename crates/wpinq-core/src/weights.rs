//! Helpers for working with real-valued record weights.
//!
//! Weights are plain `f64` values. The helpers here centralise the tolerance used when
//! comparing weights (floating-point rescaling in `Join`/`GroupBy` introduces rounding) and
//! the pruning threshold below which a record is considered absent from a dataset.

/// Records whose absolute weight falls below this threshold are dropped from datasets.
///
/// Incremental updates repeatedly add and subtract weights; without pruning, a dataset
/// accumulates an unbounded residue of `~1e-17`-weight records that slow every subsequent
/// pass and break equality-based tests.
pub const PRUNE_THRESHOLD: f64 = 1e-12;

/// Default tolerance for approximate weight comparisons in tests and invariant checks.
pub const DEFAULT_TOLERANCE: f64 = 1e-9;

/// Returns `true` when two weights are equal up to [`DEFAULT_TOLERANCE`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_tol(a, b, DEFAULT_TOLERANCE)
}

/// Returns `true` when two weights are equal up to an explicit absolute tolerance.
#[inline]
pub fn approx_eq_tol(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Returns `true` when a weight is negligible (treated as zero / record absent).
#[inline]
pub fn is_negligible(w: f64) -> bool {
    w.abs() < PRUNE_THRESHOLD
}

/// Clamps tiny negative rounding residue to exactly zero, leaving other values untouched.
#[inline]
pub fn snap_to_zero(w: f64) -> f64 {
    if is_negligible(w) {
        0.0
    } else {
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_within_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
    }

    #[test]
    fn approx_eq_tol_respects_custom_tolerance() {
        assert!(approx_eq_tol(1.0, 1.5, 0.6));
        assert!(!approx_eq_tol(1.0, 1.5, 0.4));
    }

    #[test]
    fn negligible_weights_are_detected() {
        assert!(is_negligible(0.0));
        assert!(is_negligible(1e-13));
        assert!(is_negligible(-1e-13));
        assert!(!is_negligible(1e-6));
    }

    #[test]
    fn snap_to_zero_only_affects_residue() {
        assert_eq!(snap_to_zero(1e-15), 0.0);
        assert_eq!(snap_to_zero(-1e-15), 0.0);
        assert_eq!(snap_to_zero(0.25), 0.25);
        assert_eq!(snap_to_zero(-0.25), -0.25);
    }
}
