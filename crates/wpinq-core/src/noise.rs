//! Noise primitives for differentially-private aggregation.
//!
//! The only distribution the paper needs is the Laplace distribution: `NoisyCount(A, ε)`
//! perturbs every record weight with `Laplace(1/ε)` noise (mean 0, variance `2/ε²`).
//! We also provide the two-sided geometric distribution (a discrete analogue, handy for
//! integer-valued counts) and an exponential-mechanism sampler. Everything is built by
//! inverse-CDF sampling over `rand` uniforms so no extra crates are required.

use rand::Rng;

/// A Laplace distribution with the given scale `b` (density `exp(-|x|/b) / 2b`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    scale: f64,
}

impl Laplace {
    /// Creates a Laplace distribution with scale `b`.
    ///
    /// # Panics
    /// Panics if `scale` is not strictly positive and finite.
    pub fn new(scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "Laplace scale must be positive and finite, got {scale}"
        );
        Laplace { scale }
    }

    /// The distribution used by `NoisyCount(·, ε)`: scale `1/ε`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not strictly positive and finite.
    pub fn from_epsilon(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive and finite, got {epsilon}"
        );
        Laplace::new(1.0 / epsilon)
    }

    /// The scale parameter `b`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The variance `2b²`.
    pub fn variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// Draws one sample via the inverse CDF: with `u ~ U(-1/2, 1/2)`,
    /// `x = -b · sgn(u) · ln(1 − 2|u|)`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // gen_range never returns the upper bound, and we nudge away from u = -0.5 so that
        // ln(1 - 2|u|) stays finite.
        let mut u: f64 = rng.gen_range(-0.5..0.5);
        if u == -0.5 {
            u = -0.5 + f64::EPSILON;
        }
        -self.scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Log-density of the distribution at `x` (used by probabilistic-inference scoring).
    pub fn log_density(&self, x: f64) -> f64 {
        -x.abs() / self.scale - (2.0 * self.scale).ln()
    }
}

/// Two-sided geometric ("discrete Laplace") distribution with parameter `alpha = exp(-ε)`.
///
/// `P[X = k] ∝ alpha^{|k|}`. Useful when measurements should remain integral.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoSidedGeometric {
    alpha: f64,
}

impl TwoSidedGeometric {
    /// Creates the distribution for privacy parameter `epsilon > 0`.
    ///
    /// # Panics
    /// Panics if `epsilon` is not strictly positive and finite.
    pub fn from_epsilon(epsilon: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "epsilon must be positive and finite, got {epsilon}"
        );
        TwoSidedGeometric {
            alpha: (-epsilon).exp(),
        }
    }

    /// Draws one sample as the difference of two geometric variables.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        let g1 = self.sample_geometric(rng);
        let g2 = self.sample_geometric(rng);
        g1 - g2
    }

    fn sample_geometric<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        // Number of failures before the first success with success prob (1 - alpha).
        let u: f64 = rng.gen_range(0.0..1.0);
        if self.alpha <= f64::MIN_POSITIVE {
            return 0;
        }
        (u.ln() / self.alpha.ln()).floor().max(0.0) as i64
    }
}

/// Samples an index from `scores` with probability proportional to `exp(ε · score / 2)`
/// (the exponential mechanism of McSherry–Talwar for a 1-Lipschitz scoring function).
///
/// Returns `None` when `scores` is empty.
pub fn exponential_mechanism<R: Rng + ?Sized>(
    scores: &[f64],
    epsilon: f64,
    rng: &mut R,
) -> Option<usize> {
    if scores.is_empty() {
        return None;
    }
    assert!(
        epsilon.is_finite() && epsilon > 0.0,
        "epsilon must be positive and finite, got {epsilon}"
    );
    // Work in log space and subtract the maximum for numerical stability.
    let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let weights: Vec<f64> = scores
        .iter()
        .map(|s| ((s - max) * epsilon / 2.0).exp())
        .collect();
    let total: f64 = weights.iter().sum();
    let mut draw = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if draw < *w {
            return Some(i);
        }
        draw -= w;
    }
    Some(scores.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn laplace_from_epsilon_has_expected_scale() {
        let l = Laplace::from_epsilon(0.5);
        assert_eq!(l.scale(), 2.0);
        assert_eq!(l.variance(), 8.0);
    }

    #[test]
    #[should_panic]
    fn laplace_rejects_nonpositive_epsilon() {
        let _ = Laplace::from_epsilon(0.0);
    }

    #[test]
    fn laplace_sample_mean_and_spread_are_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let l = Laplace::from_epsilon(1.0);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| l.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 2.0).abs() < 0.2, "variance {var} too far from 2");
    }

    #[test]
    fn laplace_samples_are_finite() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = Laplace::from_epsilon(10.0);
        for _ in 0..10_000 {
            assert!(l.sample(&mut rng).is_finite());
        }
    }

    #[test]
    fn laplace_log_density_peaks_at_zero() {
        let l = Laplace::new(1.0);
        assert!(l.log_density(0.0) > l.log_density(1.0));
        assert!(l.log_density(1.0) > l.log_density(2.0));
        assert!(crate::weights::approx_eq(
            l.log_density(1.0) - l.log_density(2.0),
            1.0
        ));
    }

    #[test]
    fn geometric_samples_are_integers_centred_near_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = TwoSidedGeometric::from_epsilon(0.5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| g.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.2, "mean {mean} too far from 0");
    }

    #[test]
    fn exponential_mechanism_prefers_high_scores() {
        let mut rng = StdRng::seed_from_u64(9);
        let scores = [0.0, 0.0, 10.0];
        let mut hits = 0;
        for _ in 0..1000 {
            if exponential_mechanism(&scores, 2.0, &mut rng) == Some(2) {
                hits += 1;
            }
        }
        assert!(
            hits > 900,
            "high-score option chosen only {hits}/1000 times"
        );
    }

    #[test]
    fn exponential_mechanism_handles_empty_and_singleton() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(exponential_mechanism(&[], 1.0, &mut rng), None);
        assert_eq!(exponential_mechanism(&[3.0], 1.0, &mut rng), Some(0));
    }
}
