//! The [`Record`] trait bound satisfied by every type that can live in a weighted dataset.

use std::fmt::Debug;
use std::hash::Hash;

/// Types usable as records in a [`WeightedDataset`](crate::WeightedDataset).
///
/// A record must be cheaply clonable, hashable (datasets are weight maps keyed by record),
/// totally ordered (the `GroupBy` operator sorts records inside a group, and deterministic
/// iteration orders make experiments reproducible), debuggable, and thread-safe (the
/// sharded batch executor moves record shards across `std::thread::scope` workers).
///
/// The trait is blanket-implemented; you never implement it by hand.
pub trait Record: Clone + Eq + Hash + Ord + Debug + Send + Sync + 'static {}

impl<T> Record for T where T: Clone + Eq + Hash + Ord + Debug + Send + Sync + 'static {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_record<T: Record>() {}

    #[test]
    fn common_types_are_records() {
        assert_record::<u32>();
        assert_record::<(u32, u32)>();
        assert_record::<String>();
        assert_record::<&'static str>();
        assert_record::<Vec<u8>>();
        assert_record::<(u32, (u64, i8), String)>();
    }
}
