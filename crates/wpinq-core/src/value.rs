//! Dynamic record values: the bridge between typed Rust records and the first-order
//! expression language.
//!
//! The `wpinq-expr` crate defines a serializable expression language whose interpreter
//! must work on records whose Rust type is not known at compile time (a measurement
//! service receives a wire-format plan, not a monomorphised `Plan<T>`). [`Value`] is the
//! dynamic record representation that interpreter runs on, [`ValueType`] is its shape
//! descriptor, and [`ExprRecord`] is the field-access trait that converts every concrete
//! record type used by the analyses (unsigned/signed integers, `bool`, `()`, and nested
//! tuples thereof) to and from `Value`.
//!
//! Two invariants make dynamic evaluation interchangeable with typed evaluation:
//!
//! * **Injectivity**: `to_value` is injective per type and `from_value(to_value(x)) == x`,
//!   so a dataset converted to `Value` records has exactly the same support and weights.
//! * **Order preservation**: for any `T: ExprRecord`, `a < b ⇔ a.to_value() < b.to_value()`
//!   (integers map to their numeric value, tuples map element-wise), so the sorted record
//!   order that seeded noise assignment relies on is identical before and after
//!   conversion — a typed release and a dynamic release of the same plan are
//!   byte-identical for the same RNG state.

use std::fmt;

use crate::record::Record;

/// A dynamically typed record value.
///
/// `Value` satisfies the [`Record`] bound itself (it is `Clone + Eq + Hash + Ord + Debug +
/// Send + Sync`), so a `WeightedDataset<Value>` flows through every operator kernel exactly
/// like a typed dataset. Floats are deliberately absent: record payloads in wPINQ plans are
/// discrete (weights live outside the record), and keeping `Value` float-free keeps `Eq`
/// and `Ord` total without bit-pattern caveats.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The unit record `()`.
    Unit,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (all of `u8`/`u16`/`u32`/`u64` map here).
    U64(u64),
    /// A signed integer (all of `i8`/`i16`/`i32`/`i64` map here).
    I64(i64),
    /// A tuple of values (tuples map element-wise).
    Tuple(Vec<Value>),
}

impl Value {
    /// The shape of this value.
    pub fn type_of(&self) -> ValueType {
        match self {
            Value::Unit => ValueType::Unit,
            Value::Bool(_) => ValueType::Bool,
            Value::U64(_) => ValueType::U64,
            Value::I64(_) => ValueType::I64,
            Value::Tuple(items) => ValueType::Tuple(items.iter().map(Value::type_of).collect()),
        }
    }

    /// Projects field `index` of a tuple value.
    ///
    /// # Panics
    /// Panics when the value is not a tuple with more than `index` fields; the expression
    /// type checker rejects such accesses before evaluation.
    pub fn field(&self, index: usize) -> &Value {
        match self {
            Value::Tuple(items) => items
                .get(index)
                .unwrap_or_else(|| panic!("tuple of {} fields has no field {index}", items.len())),
            other => panic!("field access .{index} on non-tuple value {other:?}"),
        }
    }

    /// The boolean payload.
    ///
    /// # Panics
    /// Panics when the value is not a boolean (predicates are type-checked to `bool`).
    pub fn as_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected a boolean value, got {other:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(n) => write!(f, "{n}"),
            Value::I64(n) => write!(f, "{n}"),
            Value::Tuple(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// The shape of a [`Value`]: what the wire format declares for plan sources and what the
/// expression type checker infers for every operator payload.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// The unit type `()`.
    Unit,
    /// Booleans.
    Bool,
    /// Unsigned integers.
    U64,
    /// Signed integers.
    I64,
    /// Tuples, element-wise.
    Tuple(Vec<ValueType>),
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Unit => write!(f, "unit"),
            ValueType::Bool => write!(f, "bool"),
            ValueType::U64 => write!(f, "u64"),
            ValueType::I64 => write!(f, "i64"),
            ValueType::Tuple(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Record types the expression language can evaluate over: conversion to and from the
/// dynamic [`Value`] representation plus a static shape descriptor.
///
/// Implemented for `()`, `bool`, the unsigned and signed fixed-width integers, and tuples
/// (up to arity 4) of `ExprRecord` types — which covers every record type the built-in
/// analyses use. Both conversions preserve ordering (see the module docs), which is what
/// licenses swapping a typed evaluation for a dynamic one without perturbing a single
/// released byte.
pub trait ExprRecord: Record {
    /// The shape of this record type.
    fn value_type() -> ValueType;

    /// Converts this record to its dynamic representation.
    fn to_value(&self) -> Value;

    /// Converts a dynamic value back; `None` when the value does not fit the type.
    fn from_value(value: &Value) -> Option<Self>;
}

macro_rules! unsigned_expr_record {
    ($($ty:ty),*) => {$(
        impl ExprRecord for $ty {
            fn value_type() -> ValueType {
                ValueType::U64
            }
            fn to_value(&self) -> Value {
                Value::U64(u64::from(*self))
            }
            fn from_value(value: &Value) -> Option<Self> {
                match value {
                    Value::U64(n) => <$ty>::try_from(*n).ok(),
                    _ => None,
                }
            }
        }
    )*};
}
unsigned_expr_record!(u8, u16, u32, u64);

macro_rules! signed_expr_record {
    ($($ty:ty),*) => {$(
        impl ExprRecord for $ty {
            fn value_type() -> ValueType {
                ValueType::I64
            }
            fn to_value(&self) -> Value {
                Value::I64(i64::from(*self))
            }
            fn from_value(value: &Value) -> Option<Self> {
                match value {
                    Value::I64(n) => <$ty>::try_from(*n).ok(),
                    _ => None,
                }
            }
        }
    )*};
}
signed_expr_record!(i8, i16, i32, i64);

impl ExprRecord for bool {
    fn value_type() -> ValueType {
        ValueType::Bool
    }
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
    fn from_value(value: &Value) -> Option<Self> {
        match value {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl ExprRecord for () {
    fn value_type() -> ValueType {
        ValueType::Unit
    }
    fn to_value(&self) -> Value {
        Value::Unit
    }
    fn from_value(value: &Value) -> Option<Self> {
        match value {
            Value::Unit => Some(()),
            _ => None,
        }
    }
}

macro_rules! tuple_expr_record {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: ExprRecord),+> ExprRecord for ($($name,)+) {
            fn value_type() -> ValueType {
                ValueType::Tuple(vec![$($name::value_type()),+])
            }
            fn to_value(&self) -> Value {
                Value::Tuple(vec![$(self.$idx.to_value()),+])
            }
            fn from_value(value: &Value) -> Option<Self> {
                match value {
                    Value::Tuple(items) => {
                        let expected = [$(stringify!($name)),+].len();
                        if items.len() != expected {
                            return None;
                        }
                        Some(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => None,
                }
            }
        }
    )*};
}
tuple_expr_record!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_preserve_records() {
        let record: ((u32, u32, u32), u64) = ((1, 2, 3), 9);
        let value = record.to_value();
        assert_eq!(
            <((u32, u32, u32), u64)>::from_value(&value),
            Some(record),
            "from_value ∘ to_value must be the identity"
        );
        assert_eq!(
            value.type_of(),
            <((u32, u32, u32), u64)>::value_type(),
            "runtime shape must match the static descriptor"
        );
    }

    #[test]
    fn conversion_preserves_record_ordering() {
        let mut typed: Vec<(u32, u64)> = vec![(3, 0), (1, 9), (1, 2), (2, 5), (0, 0)];
        let mut dynamic: Vec<Value> = typed.iter().map(ExprRecord::to_value).collect();
        typed.sort();
        dynamic.sort();
        let converted: Vec<Value> = typed.iter().map(ExprRecord::to_value).collect();
        assert_eq!(dynamic, converted, "sorted orders must agree");
    }

    #[test]
    fn from_value_rejects_mismatched_shapes() {
        assert_eq!(u32::from_value(&Value::I64(1)), None);
        assert_eq!(u8::from_value(&Value::U64(300)), None, "range check");
        assert_eq!(<(u32, u32)>::from_value(&Value::U64(1)), None);
        assert_eq!(
            <(u32, u32)>::from_value(&Value::Tuple(vec![Value::U64(1)])),
            None,
            "arity check"
        );
    }

    #[test]
    fn field_access_and_display() {
        let v = Value::Tuple(vec![Value::U64(7), Value::Bool(true), Value::Unit]);
        assert_eq!(v.field(0), &Value::U64(7));
        assert!(v.field(1).as_bool());
        assert_eq!(v.to_string(), "(7, true, ())");
        assert_eq!(v.type_of().to_string(), "(u64, bool, unit)");
    }
}
