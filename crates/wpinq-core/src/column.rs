//! Columnar (struct-of-arrays) batches of dynamic [`Value`] records.
//!
//! The dynamic record representation that makes plans serializable stores every record as
//! a heap-walking [`Value`] enum tree. For batch evaluation that layout wastes both memory
//! bandwidth and branch predictions: every operator re-discovers the (single) shape of the
//! dataset once per record. A [`ColumnBatch`] transposes a homogeneous run of records into
//! one primitive vector per [`ValueType`] leaf — `Unit` carries no storage at all, `Bool`/
//! `U64`/`I64` become flat `Vec`s, and tuples become nested column *groups* — plus the
//! parallel weights vector.
//!
//! Two properties matter for privacy-relevant bitwise reproducibility and are guaranteed
//! here:
//!
//! - **Order preservation.** [`ColumnBatch::from_pairs`] keeps the input iteration order:
//!   row `i` of the batch is the `i`-th input record, and [`ColumnBatch::to_pairs`] yields
//!   the rows back in exactly that order with bit-identical weights. The sorted-record
//!   noise-assignment discipline of the release layer is therefore untouched by a columnar
//!   detour.
//! - **Shape totality.** Building verifies every record against the batch type and fails
//!   (returns `None`) rather than coercing, so a columnar kernel can always fall back to
//!   the row representation instead of guessing.
//!
//! The vectorized expression interpreter (`wpinq-expr`) evaluates register programs
//! directly over [`ColumnData`], and the sharded columnar kernels exchange `ColumnBatch`
//! segments instead of `Vec<(Value, f64)>` buckets.

use std::cmp::Ordering;

use crate::dataset::WeightedDataset;
use crate::value::{Value, ValueType};

/// The decomposed storage of one column of values, all sharing a single [`ValueType`].
///
/// `Unit` columns carry no per-row storage; their length is implied by the enclosing
/// batch (or by the sibling columns of a tuple group). Tuple columns store one child
/// column per field, each of the common row count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnData {
    /// A column of `()` records: pure length, no bytes.
    Unit,
    /// A flat column of booleans.
    Bool(Vec<bool>),
    /// A flat column of unsigned integers.
    U64(Vec<u64>),
    /// A flat column of signed integers.
    I64(Vec<i64>),
    /// A column group: one child column per tuple field.
    Tuple(Vec<ColumnData>),
}

impl ColumnData {
    /// An empty column of shape `ty` with room for `capacity` rows.
    pub fn with_capacity(ty: &ValueType, capacity: usize) -> ColumnData {
        match ty {
            ValueType::Unit => ColumnData::Unit,
            ValueType::Bool => ColumnData::Bool(Vec::with_capacity(capacity)),
            ValueType::U64 => ColumnData::U64(Vec::with_capacity(capacity)),
            ValueType::I64 => ColumnData::I64(Vec::with_capacity(capacity)),
            ValueType::Tuple(items) => ColumnData::Tuple(
                items
                    .iter()
                    .map(|t| ColumnData::with_capacity(t, capacity))
                    .collect(),
            ),
        }
    }

    /// The shape of this column.
    pub fn type_of(&self) -> ValueType {
        match self {
            ColumnData::Unit => ValueType::Unit,
            ColumnData::Bool(_) => ValueType::Bool,
            ColumnData::U64(_) => ValueType::U64,
            ColumnData::I64(_) => ValueType::I64,
            ColumnData::Tuple(cols) => {
                ValueType::Tuple(cols.iter().map(ColumnData::type_of).collect())
            }
        }
    }

    /// Appends one value; returns `false` (leaving the column in an unspecified but safe
    /// state) when the value does not match the column shape.
    pub fn push_value(&mut self, value: &Value) -> bool {
        match (self, value) {
            (ColumnData::Unit, Value::Unit) => true,
            (ColumnData::Bool(col), Value::Bool(b)) => {
                col.push(*b);
                true
            }
            (ColumnData::U64(col), Value::U64(n)) => {
                col.push(*n);
                true
            }
            (ColumnData::I64(col), Value::I64(n)) => {
                col.push(*n);
                true
            }
            (ColumnData::Tuple(cols), Value::Tuple(items)) => {
                cols.len() == items.len()
                    && cols
                        .iter_mut()
                        .zip(items)
                        .all(|(col, item)| col.push_value(item))
            }
            _ => false,
        }
    }

    /// Appends row `index` of `other` (a column of the same shape).
    pub fn push_row_from(&mut self, other: &ColumnData, index: usize) {
        match (self, other) {
            (ColumnData::Unit, ColumnData::Unit) => {}
            (ColumnData::Bool(col), ColumnData::Bool(src)) => col.push(src[index]),
            (ColumnData::U64(col), ColumnData::U64(src)) => col.push(src[index]),
            (ColumnData::I64(col), ColumnData::I64(src)) => col.push(src[index]),
            (ColumnData::Tuple(cols), ColumnData::Tuple(src)) => {
                debug_assert_eq!(cols.len(), src.len());
                for (col, s) in cols.iter_mut().zip(src) {
                    col.push_row_from(s, index);
                }
            }
            (dst, src) => panic!(
                "push_row_from between mismatched column shapes {} and {}",
                dst.type_of(),
                src.type_of()
            ),
        }
    }

    /// Drops every row while keeping the allocated capacity of every leaf vector — the
    /// reuse primitive of per-operator scratch arenas, which gather into the same columns
    /// chunk after chunk instead of reallocating.
    pub fn clear(&mut self) {
        match self {
            ColumnData::Unit => {}
            ColumnData::Bool(col) => col.clear(),
            ColumnData::U64(col) => col.clear(),
            ColumnData::I64(col) => col.clear(),
            ColumnData::Tuple(cols) => {
                for col in cols {
                    col.clear();
                }
            }
        }
    }

    /// Materializes row `index` as a [`Value`].
    pub fn value_at(&self, index: usize) -> Value {
        match self {
            ColumnData::Unit => Value::Unit,
            ColumnData::Bool(col) => Value::Bool(col[index]),
            ColumnData::U64(col) => Value::U64(col[index]),
            ColumnData::I64(col) => Value::I64(col[index]),
            ColumnData::Tuple(cols) => {
                Value::Tuple(cols.iter().map(|c| c.value_at(index)).collect())
            }
        }
    }
}

/// Compares row `ai` of `a` with row `bi` of `b` exactly as the materialized
/// [`Value`]s would compare (columns of equal shape; same-shape comparison is all the
/// type checker admits).
pub fn cmp_rows(a: &ColumnData, ai: usize, b: &ColumnData, bi: usize) -> Ordering {
    match (a, b) {
        (ColumnData::Unit, ColumnData::Unit) => Ordering::Equal,
        (ColumnData::Bool(x), ColumnData::Bool(y)) => x[ai].cmp(&y[bi]),
        (ColumnData::U64(x), ColumnData::U64(y)) => x[ai].cmp(&y[bi]),
        (ColumnData::I64(x), ColumnData::I64(y)) => x[ai].cmp(&y[bi]),
        (ColumnData::Tuple(xs), ColumnData::Tuple(ys)) => {
            // Lexicographic with length tie-break, matching `Vec<Value>`'s `Ord`.
            for (x, y) in xs.iter().zip(ys) {
                match cmp_rows(x, ai, y, bi) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            xs.len().cmp(&ys.len())
        }
        (a, b) => panic!(
            "cmp_rows between mismatched column shapes {} and {}",
            a.type_of(),
            b.type_of()
        ),
    }
}

/// A homogeneous batch of weighted [`Value`] records in columnar layout: the decomposed
/// record columns plus the parallel weights vector.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBatch {
    ty: ValueType,
    columns: ColumnData,
    weights: Vec<f64>,
}

impl ColumnBatch {
    /// An empty batch of shape `ty`.
    pub fn new(ty: ValueType) -> ColumnBatch {
        ColumnBatch::with_capacity(ty, 0)
    }

    /// An empty batch of shape `ty` with room for `capacity` rows.
    pub fn with_capacity(ty: ValueType, capacity: usize) -> ColumnBatch {
        ColumnBatch {
            columns: ColumnData::with_capacity(&ty, capacity),
            weights: Vec::with_capacity(capacity),
            ty,
        }
    }

    /// Transposes `(record, weight)` pairs into columns, **preserving iteration order**:
    /// row `i` is the `i`-th pair. Returns `None` when any record does not match `ty`.
    pub fn from_pairs<'a, I>(ty: ValueType, pairs: I) -> Option<ColumnBatch>
    where
        I: IntoIterator<Item = (&'a Value, f64)>,
    {
        let pairs = pairs.into_iter();
        let mut batch = ColumnBatch::with_capacity(ty, pairs.size_hint().0);
        for (record, weight) in pairs {
            if !batch.columns.push_value(record) {
                return None;
            }
            batch.weights.push(weight);
        }
        Some(batch)
    }

    /// Reassembles a batch from decomposed columns and weights — the decode-side
    /// constructor of the columnar wire format. Returns `None` unless every primitive
    /// leaf holds exactly `weights.len()` rows (a shape of only `Unit` leaves carries no
    /// storage and takes its length from the weights).
    pub fn from_parts(columns: ColumnData, weights: Vec<f64>) -> Option<ColumnBatch> {
        fn leaves_hold(cols: &ColumnData, rows: usize) -> bool {
            match cols {
                ColumnData::Unit => true,
                ColumnData::Bool(col) => col.len() == rows,
                ColumnData::U64(col) => col.len() == rows,
                ColumnData::I64(col) => col.len() == rows,
                ColumnData::Tuple(cols) => cols.iter().all(|c| leaves_hold(c, rows)),
            }
        }
        if !leaves_hold(&columns, weights.len()) {
            return None;
        }
        Some(ColumnBatch {
            ty: columns.type_of(),
            columns,
            weights,
        })
    }

    /// Transposes a dataset into columns (in the dataset's iteration order), inferring the
    /// batch type from the first record. Returns `None` for an empty dataset (no shape to
    /// infer) or a shape-inconsistent one.
    pub fn from_dataset(data: &WeightedDataset<Value>) -> Option<ColumnBatch> {
        let ty = data.records().next()?.type_of();
        ColumnBatch::from_pairs(ty, data.iter())
    }

    /// Appends one row.
    pub fn push(&mut self, record: &Value, weight: f64) -> bool {
        if !self.columns.push_value(record) {
            return false;
        }
        self.weights.push(weight);
        true
    }

    /// Appends row `index` of `other` (a batch of the same shape).
    pub fn push_row_from(&mut self, other: &ColumnBatch, index: usize) {
        self.columns.push_row_from(&other.columns, index);
        self.weights.push(other.weights[index]);
    }

    /// Appends row `index` of a free-standing column (of this batch's shape) with an
    /// explicit weight — the gather primitive of the sharded columnar exchanges, which
    /// move column segments instead of materialized `(Value, f64)` rows.
    pub fn push_projected(&mut self, columns: &ColumnData, index: usize, weight: f64) {
        self.columns.push_row_from(columns, index);
        self.weights.push(weight);
    }

    /// The number of rows.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The record shape.
    pub fn ty(&self) -> &ValueType {
        &self.ty
    }

    /// The record columns.
    pub fn columns(&self) -> &ColumnData {
        &self.columns
    }

    /// The parallel weights vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Materializes row `index`.
    pub fn value_at(&self, index: usize) -> Value {
        self.columns.value_at(index)
    }

    /// Transposes back to `(record, weight)` pairs in row order — the exact inverse of
    /// [`from_pairs`](Self::from_pairs), bit-identical weights included.
    pub fn to_pairs(&self) -> Vec<(Value, f64)> {
        (0..self.len())
            .map(|i| (self.value_at(i), self.weights[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<(Value, f64)> {
        vec![
            (
                Value::Tuple(vec![Value::U64(3), Value::I64(-1), Value::Bool(true)]),
                1.25,
            ),
            (
                Value::Tuple(vec![Value::U64(0), Value::I64(7), Value::Bool(false)]),
                -0.5,
            ),
            (
                Value::Tuple(vec![Value::U64(9), Value::I64(0), Value::Bool(true)]),
                3.0f64.sqrt(),
            ),
        ]
    }

    #[test]
    fn round_trip_preserves_order_values_and_weight_bits() {
        let rows = sample_rows();
        let ty = rows[0].0.type_of();
        let batch = ColumnBatch::from_pairs(ty.clone(), rows.iter().map(|(v, w)| (v, *w))).unwrap();
        assert_eq!(batch.len(), rows.len());
        assert_eq!(batch.ty(), &ty);
        let back = batch.to_pairs();
        assert_eq!(back.len(), rows.len());
        for ((v0, w0), (v1, w1)) in rows.iter().zip(&back) {
            assert_eq!(v0, v1);
            assert_eq!(w0.to_bits(), w1.to_bits());
        }
    }

    #[test]
    fn shape_mismatch_is_rejected_not_coerced() {
        let ty = ValueType::Tuple(vec![ValueType::U64, ValueType::U64]);
        let rows = [
            (Value::Tuple(vec![Value::U64(1), Value::U64(2)]), 1.0),
            (Value::U64(3), 1.0),
        ];
        assert!(ColumnBatch::from_pairs(ty, rows.iter().map(|(v, w)| (v, *w))).is_none());
    }

    #[test]
    fn unit_columns_are_pure_length() {
        let batch =
            ColumnBatch::from_pairs(ValueType::Unit, [(&Value::Unit, 1.0), (&Value::Unit, 2.0)])
                .unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.columns(), &ColumnData::Unit);
        assert_eq!(batch.value_at(1), Value::Unit);
    }

    #[test]
    fn from_dataset_infers_shape_and_none_on_empty() {
        assert!(ColumnBatch::from_dataset(&WeightedDataset::new()).is_none());
        let data = WeightedDataset::from_pairs([
            (Value::Tuple(vec![Value::U64(1), Value::U64(2)]), 1.0),
            (Value::Tuple(vec![Value::U64(3), Value::U64(4)]), 2.0),
        ]);
        let batch = ColumnBatch::from_dataset(&data).unwrap();
        assert_eq!(batch.len(), 2);
        let rebuilt = WeightedDataset::from_pairs(batch.to_pairs());
        assert_eq!(rebuilt, data);
    }

    #[test]
    fn cmp_rows_matches_materialized_value_order() {
        let rows = sample_rows();
        let ty = rows[0].0.type_of();
        let batch = ColumnBatch::from_pairs(ty, rows.iter().map(|(v, w)| (v, *w))).unwrap();
        for i in 0..rows.len() {
            for j in 0..rows.len() {
                assert_eq!(
                    cmp_rows(batch.columns(), i, batch.columns(), j),
                    rows[i].0.cmp(&rows[j].0),
                    "row {i} vs row {j}"
                );
            }
        }
    }

    #[test]
    fn push_row_from_gathers_rows() {
        let rows = sample_rows();
        let ty = rows[0].0.type_of();
        let batch = ColumnBatch::from_pairs(ty.clone(), rows.iter().map(|(v, w)| (v, *w))).unwrap();
        let mut segment = ColumnBatch::new(ty);
        segment.push_row_from(&batch, 2);
        segment.push_row_from(&batch, 0);
        assert_eq!(segment.len(), 2);
        assert_eq!(segment.value_at(0), rows[2].0);
        assert_eq!(segment.value_at(1), rows[0].0);
        assert_eq!(segment.weights()[0].to_bits(), rows[2].1.to_bits());
    }
}
