//! # wpinq-core — engine-neutral foundations of the wPINQ platform
//!
//! The data model and batch operator kernels shared by every execution engine:
//!
//! * [`WeightedDataset<T>`] and the [`Record`] bound — the weighted multiset the paper's
//!   differential-privacy definition is stated over, with the L1 dataset distance
//!   `‖A − B‖ = Σ_x |A(x) − B(x)|`.
//! * [`operators`] — the batch kernels for every stable transformation (Select, Where,
//!   SelectMany, GroupBy, Shave, Join, Union, Intersect, Concat, Except). These are *the*
//!   reference semantics: the incremental engine in `wpinq-dataflow` recomputes affected
//!   keys with these same kernels, and the `wpinq` plan layer's batch evaluator calls them
//!   directly, so there is exactly one definition of each operator's weight arithmetic.
//! * [`shard`] — hash-partitioned [`ShardedDataset`]s plus shard-parallel variants of every
//!   batch kernel (long-lived [`shard::WorkerPool`] workers or scoped threads, selected by
//!   [`shard::ShardRunner`]; exchanges at GroupBy/Join boundaries), bitwise-identical to
//!   the sequential kernels thanks to the canonical accumulation order in [`accumulate`].
//! * [`noise`] and [`aggregation`] — Laplace sampling and the `NoisyCount`/`NoisySum`
//!   measurement primitives (no privacy accounting here; budgets live in `wpinq`).
//! * [`weights`] — tolerances and the pruning threshold for real-valued record weights.
//!
//! Downstream layering: `wpinq-dataflow` (incremental engine) depends only on this crate;
//! `wpinq` (privacy accounting + query-plan IR) depends on both and re-exports everything
//! here, so analysts normally import `wpinq::prelude::*` and never see `wpinq-core`.

// `deny`, not `forbid`: `shard::WorkerPool::map` needs exactly one `unsafe` lifetime
// erasure (OS worker threads force `'static` job types; the call blocks until every
// reply arrives, which is what makes it sound). Every other module stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulate;
pub mod aggregation;
pub mod column;
pub mod colwire;
pub mod dataset;
pub mod noise;
pub mod operators;
pub mod record;
pub mod shard;
pub mod value;
pub mod weights;

pub use aggregation::NoisyCounts;
pub use dataset::WeightedDataset;
pub use record::Record;
pub use shard::ShardedDataset;
pub use value::{ExprRecord, Value, ValueType};
