//! [`WeightedDataset`]: the central data structure of wPINQ.
//!
//! A weighted dataset is a function `A : D → ℝ` assigning a real-valued weight to every
//! record of a domain; records not stored have weight `0.0`. It generalises multisets
//! (non-negative integer weights) and is the object the paper's differential-privacy
//! definition is stated over, using the L1 distance `‖A − B‖ = Σ_x |A(x) − B(x)|`.

use std::borrow::Borrow;
use std::hash::Hash;

use rustc_hash::{FxBuildHasher, FxHashMap};

use crate::record::Record;
use crate::weights;

/// A dataset in which each record carries a real-valued weight.
///
/// Stored as a hash map from record to weight; records with negligible weight (see
/// [`weights::PRUNE_THRESHOLD`]) are dropped so that "absent" and "weight zero" coincide.
/// The map uses a fast non-SipHash hasher: these maps are the hottest state in the MCMC
/// loop and their keys (edge tuples, degree triples) are internal, never attacker-chosen.
#[derive(Clone, Debug)]
pub struct WeightedDataset<T: Record> {
    weights: FxHashMap<T, f64>,
}

impl<T: Record> Default for WeightedDataset<T> {
    fn default() -> Self {
        WeightedDataset::new()
    }
}

impl<T: Record> WeightedDataset<T> {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        WeightedDataset {
            weights: FxHashMap::default(),
        }
    }

    /// Creates an empty dataset with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        WeightedDataset {
            weights: FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default()),
        }
    }

    /// Builds a dataset from `(record, weight)` pairs, accumulating duplicate records.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (T, f64)>,
    {
        let mut ds = WeightedDataset::new();
        for (record, weight) in pairs {
            ds.add_weight(record, weight);
        }
        ds
    }

    /// Builds a traditional (multiset-like) dataset: every listed record gets weight `1.0`,
    /// with duplicates accumulating.
    pub fn from_records<I>(records: I) -> Self
    where
        I: IntoIterator<Item = T>,
    {
        Self::from_pairs(records.into_iter().map(|r| (r, 1.0)))
    }

    /// The weight of `record`; `0.0` when the record is absent.
    pub fn weight<Q>(&self, record: &Q) -> f64
    where
        T: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.weights.get(record).copied().unwrap_or(0.0)
    }

    /// Returns `true` when the record carries non-negligible weight.
    pub fn contains<Q>(&self, record: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.weights.contains_key(record)
    }

    /// Adds `delta` to the weight of `record`, pruning the record if the result is negligible.
    pub fn add_weight(&mut self, record: T, delta: f64) {
        use std::collections::hash_map::Entry;
        match self.weights.entry(record) {
            Entry::Occupied(mut entry) => {
                let w = entry.get_mut();
                *w += delta;
                if weights::is_negligible(*w) {
                    entry.remove();
                }
            }
            Entry::Vacant(entry) => {
                if !weights::is_negligible(delta) {
                    entry.insert(delta);
                }
            }
        }
    }

    /// Sets the weight of `record` to exactly `weight` (removing it when negligible).
    pub fn set_weight(&mut self, record: T, weight: f64) {
        if weights::is_negligible(weight) {
            self.weights.remove(&record);
        } else {
            self.weights.insert(record, weight);
        }
    }

    /// Removes a record entirely, returning its previous weight.
    pub fn remove<Q>(&mut self, record: &Q) -> f64
    where
        T: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.weights.remove(record).unwrap_or(0.0)
    }

    /// Number of records with non-negligible weight.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Returns `true` when no record has non-negligible weight.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The dataset size `‖A‖ = Σ_x |A(x)|`.
    pub fn norm(&self) -> f64 {
        self.weights.values().map(|w| w.abs()).sum()
    }

    /// The sum of weights `Σ_x A(x)` (signed, unlike [`norm`](Self::norm)).
    pub fn total_weight(&self) -> f64 {
        self.weights.values().sum()
    }

    /// The L1 dataset distance `‖A − B‖ = Σ_x |A(x) − B(x)|` from the paper's Definition 1.
    pub fn distance(&self, other: &WeightedDataset<T>) -> f64 {
        let mut total = 0.0;
        for (record, w) in &self.weights {
            total += (w - other.weight(record)).abs();
        }
        for (record, w) in &other.weights {
            if !self.weights.contains_key(record) {
                total += w.abs();
            }
        }
        total
    }

    /// Iterates over `(record, weight)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, f64)> + Clone {
        self.weights.iter().map(|(r, w)| (r, *w))
    }

    /// Iterates over records only.
    pub fn records(&self) -> impl Iterator<Item = &T> {
        self.weights.keys()
    }

    /// Returns `(record, weight)` pairs sorted by record, for deterministic output.
    pub fn sorted_pairs(&self) -> Vec<(T, f64)> {
        let mut pairs: Vec<(T, f64)> = self.weights.iter().map(|(r, w)| (r.clone(), *w)).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        pairs
    }

    /// Multiplies every weight by `factor`.
    pub fn scale(&mut self, factor: f64) {
        if factor == 0.0 {
            self.weights.clear();
            return;
        }
        for w in self.weights.values_mut() {
            *w *= factor;
        }
        self.prune();
    }

    /// Returns a copy of the dataset with every weight multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> Self {
        let mut out = self.clone();
        out.scale(factor);
        out
    }

    /// Removes records whose weight has become negligible.
    pub fn prune(&mut self) {
        self.weights.retain(|_, w| !weights::is_negligible(*w));
    }

    /// Merges another dataset into this one by element-wise addition (Concat semantics).
    ///
    /// Merging **two** datasets is deterministic (one addition per record). Folding three
    /// or more parts through repeated `merge` calls is *not* order-insensitive — float
    /// addition is non-associative — so shard merges and other N-way aggregations should
    /// use [`merge_canonical`](Self::merge_canonical) instead.
    pub fn merge(&mut self, other: &WeightedDataset<T>) {
        for (record, w) in other.iter() {
            self.add_weight(record.clone(), w);
        }
    }

    /// Element-wise sum of any number of parts with each record's contributions
    /// accumulated in the canonical order of [`crate::accumulate`]: the result is bitwise
    /// identical for any permutation of `parts` (and of the records inside them), which
    /// makes shard merges exactly reproducible.
    pub fn merge_canonical<'a, I>(parts: I) -> WeightedDataset<T>
    where
        I: IntoIterator<Item = &'a WeightedDataset<T>>,
    {
        let mut acc = crate::accumulate::Contributions::new();
        for part in parts {
            for (record, weight) in part.iter() {
                acc.push(record.clone(), weight);
            }
        }
        acc.into_dataset()
    }

    /// Returns `true` when both datasets assign (approximately) equal weight to every record.
    pub fn approx_eq(&self, other: &WeightedDataset<T>, tol: f64) -> bool {
        self.distance(other) <= tol
    }
}

impl<T: Record> PartialEq for WeightedDataset<T> {
    fn eq(&self, other: &Self) -> bool {
        if self.weights.len() != other.weights.len() {
            return false;
        }
        self.weights.iter().all(|(r, w)| other.weight(r) == *w)
    }
}

impl<T: Record> FromIterator<(T, f64)> for WeightedDataset<T> {
    fn from_iter<I: IntoIterator<Item = (T, f64)>>(iter: I) -> Self {
        Self::from_pairs(iter)
    }
}

impl<T: Record> FromIterator<T> for WeightedDataset<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self::from_records(iter)
    }
}

impl<T: Record> IntoIterator for WeightedDataset<T> {
    type Item = (T, f64);
    type IntoIter = std::collections::hash_map::IntoIter<T, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.weights.into_iter()
    }
}

impl<'a, T: Record> IntoIterator for &'a WeightedDataset<T> {
    type Item = (&'a T, &'a f64);
    type IntoIter = std::collections::hash_map::Iter<'a, T, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.weights.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sample dataset `A` from Section 2.1 of the paper.
    fn sample_a() -> WeightedDataset<&'static str> {
        WeightedDataset::from_pairs([("1", 0.75), ("2", 2.0), ("3", 1.0)])
    }

    /// The sample dataset `B` from Section 2.1 of the paper.
    fn sample_b() -> WeightedDataset<&'static str> {
        WeightedDataset::from_pairs([("1", 3.0), ("4", 2.0)])
    }

    #[test]
    fn absent_records_have_zero_weight() {
        let a = sample_a();
        assert_eq!(a.weight(&"2"), 2.0);
        assert_eq!(a.weight(&"0"), 0.0);
        assert!(!a.contains(&"0"));
    }

    #[test]
    fn from_pairs_accumulates_duplicates() {
        let ds = WeightedDataset::from_pairs([("x", 1.0), ("x", 0.5), ("y", 2.0)]);
        assert_eq!(ds.weight(&"x"), 1.5);
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn from_records_gives_unit_weights() {
        let ds: WeightedDataset<u32> = WeightedDataset::from_records([1, 2, 2, 3]);
        assert_eq!(ds.weight(&1), 1.0);
        assert_eq!(ds.weight(&2), 2.0);
        assert_eq!(ds.weight(&3), 1.0);
    }

    #[test]
    fn norm_is_sum_of_absolute_weights() {
        let a = sample_a();
        assert!(crate::weights::approx_eq(a.norm(), 3.75));
        let mixed = WeightedDataset::from_pairs([("p", -1.0), ("q", 2.0)]);
        assert!(crate::weights::approx_eq(mixed.norm(), 3.0));
        assert!(crate::weights::approx_eq(mixed.total_weight(), 1.0));
    }

    #[test]
    fn distance_is_symmetric_and_matches_definition() {
        let a = sample_a();
        let b = sample_b();
        // |0.75-3.0| + |2.0-0| + |1.0-0| + |0-2.0| = 2.25 + 2 + 1 + 2 = 7.25
        assert!(crate::weights::approx_eq(a.distance(&b), 7.25));
        assert!(crate::weights::approx_eq(b.distance(&a), 7.25));
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn distance_satisfies_triangle_inequality_on_samples() {
        let a = sample_a();
        let b = sample_b();
        let c = WeightedDataset::from_pairs([("1", 1.0), ("5", 1.0)]);
        assert!(a.distance(&b) <= a.distance(&c) + c.distance(&b) + 1e-9);
    }

    #[test]
    fn add_weight_prunes_negligible_records() {
        let mut ds = WeightedDataset::new();
        ds.add_weight("x", 1.0);
        ds.add_weight("x", -1.0);
        assert!(!ds.contains(&"x"));
        assert_eq!(ds.len(), 0);
    }

    #[test]
    fn set_weight_overwrites_and_removes() {
        let mut ds = sample_a();
        ds.set_weight("1", 5.0);
        assert_eq!(ds.weight(&"1"), 5.0);
        ds.set_weight("1", 0.0);
        assert!(!ds.contains(&"1"));
    }

    #[test]
    fn scale_and_scaled_multiply_all_weights() {
        let a = sample_a();
        let doubled = a.scaled(2.0);
        assert_eq!(doubled.weight(&"2"), 4.0);
        assert_eq!(a.weight(&"2"), 2.0);
        let zeroed = a.scaled(0.0);
        assert!(zeroed.is_empty());
    }

    #[test]
    fn merge_adds_element_wise() {
        let mut a = sample_a();
        a.merge(&sample_b());
        assert!(crate::weights::approx_eq(a.weight(&"1"), 3.75));
        assert!(crate::weights::approx_eq(a.weight(&"4"), 2.0));
    }

    #[test]
    fn merge_canonical_is_permutation_invariant_bitwise() {
        // Weights chosen so left-to-right folds disagree between orderings.
        let p1 = WeightedDataset::from_pairs([("x", 1e16), ("y", 0.1)]);
        let p2 = WeightedDataset::from_pairs([("x", 1.0), ("y", 0.2)]);
        let p3 = WeightedDataset::from_pairs([("x", -1e16), ("y", 0.3)]);
        let orders: [[&WeightedDataset<&str>; 3]; 3] =
            [[&p1, &p2, &p3], [&p3, &p1, &p2], [&p2, &p3, &p1]];
        let reference = WeightedDataset::merge_canonical(orders[0]);
        for order in &orders[1..] {
            let merged = WeightedDataset::merge_canonical(order.iter().copied());
            assert_eq!(merged.len(), reference.len());
            for (record, w) in reference.iter() {
                assert_eq!(
                    w.to_bits(),
                    merged.weight(record).to_bits(),
                    "canonical merge differs for {record:?}"
                );
            }
        }
        // Sequential folds of the same parts need not agree bitwise — that is the
        // nondeterminism merge_canonical exists to remove (canonical order fixes the
        // rounding, it does not improve it: here the ascending sum absorbs x's 1.0 into
        // the 1e16 cancellation, deterministically).
        assert!(crate::weights::approx_eq(reference.weight(&"y"), 0.6));
    }

    #[test]
    fn sorted_pairs_is_deterministic() {
        let a = sample_a();
        let pairs = a.sorted_pairs();
        assert_eq!(
            pairs.iter().map(|(r, _)| *r).collect::<Vec<_>>(),
            vec!["1", "2", "3"]
        );
    }

    #[test]
    fn equality_compares_weights_exactly() {
        let a = sample_a();
        let mut b = sample_a();
        assert_eq!(a, b);
        b.add_weight("1", 0.1);
        assert_ne!(a, b);
    }

    #[test]
    fn remove_returns_previous_weight() {
        let mut a = sample_a();
        assert_eq!(a.remove(&"2"), 2.0);
        assert_eq!(a.remove(&"2"), 0.0);
    }

    #[test]
    fn into_iterator_roundtrips() {
        let a = sample_a();
        let rebuilt: WeightedDataset<&'static str> = a.clone().into_iter().collect();
        assert_eq!(a, rebuilt);
    }
}
