//! Canonical floating-point accumulation for reproducible weight sums.
//!
//! Several operators sum many partial contributions into one record weight (`Select`
//! collisions, `SelectMany` productions, `Join` matches, shard merges). Floating-point
//! addition is not associative, so the *order* of those additions leaks into the result:
//! two evaluations that produce the same multiset of contributions in different orders —
//! a hash map iterated differently, or shards merged in a different interleaving — can
//! disagree in the last bits. That breaks exact reproducibility and makes it impossible to
//! assert that a sharded evaluation equals a sequential one.
//!
//! The fix is a *canonical accumulation order*: every contribution to a record is
//! collected first, the contributions are sorted by [`f64::total_cmp`], and only then
//! summed. The sum becomes a function of the contribution **multiset** alone, independent
//! of arrival order, so any two executors that produce the same contributions bitwise
//! produce the same dataset bitwise. [`Contributions`] is the accumulator implementing
//! this; [`canonical_sum`] and [`canonical_norm`] are the scalar helpers (`Join` uses the
//! latter for its per-key normalising denominators).

use rustc_hash::FxHashMap;

use crate::dataset::WeightedDataset;
use crate::record::Record;
use crate::weights;

/// Sums `values` in ascending [`f64::total_cmp`] order (sorting `values` in place).
///
/// The result depends only on the multiset of values, never on their initial order.
pub fn canonical_sum(values: &mut [f64]) -> f64 {
    values.sort_unstable_by(f64::total_cmp);
    values.iter().sum()
}

/// The canonical L1 norm of a weight multiset: `Σ |w|` summed in canonical order.
pub fn canonical_norm<I: IntoIterator<Item = f64>>(weights: I) -> f64 {
    let mut magnitudes: Vec<f64> = weights.into_iter().map(f64::abs).collect();
    canonical_sum(&mut magnitudes)
}

/// The contribution list of one record: almost all records receive exactly one
/// contribution, so the single-element case avoids a heap allocation.
///
/// Public so callers that keep their own record maps (e.g. the incremental engines'
/// delta consolidation) can resolve per-record totals in the same canonical order as
/// [`Contributions`].
#[derive(Debug, Clone)]
pub enum Contribution {
    /// Exactly one contribution so far.
    One(f64),
    /// Two or more contributions, resolved canonically by [`finish`](Contribution::finish).
    Many(Vec<f64>),
}

impl Contribution {
    /// Adds one more contribution.
    pub fn push(&mut self, weight: f64) {
        match self {
            Contribution::One(first) => *self = Contribution::Many(vec![*first, weight]),
            Contribution::Many(values) => values.push(weight),
        }
    }

    /// Resolves the total in canonical ([`canonical_sum`]) order.
    pub fn finish(self) -> f64 {
        match self {
            Contribution::One(w) => w,
            Contribution::Many(mut values) => canonical_sum(&mut values),
        }
    }
}

/// An order-insensitive weight accumulator: collects every `(record, weight)` contribution
/// and resolves each record's total in canonical order on
/// [`into_dataset`](Contributions::into_dataset).
///
/// Feeding the same contributions in any order yields a bitwise-identical dataset, which
/// is what lets the sharded executor guarantee exact equality with sequential evaluation.
#[derive(Debug, Clone)]
pub struct Contributions<T: Record> {
    entries: FxHashMap<T, Contribution>,
}

impl<T: Record> Default for Contributions<T> {
    fn default() -> Self {
        Contributions::new()
    }
}

impl<T: Record> Contributions<T> {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Contributions {
            entries: FxHashMap::default(),
        }
    }

    /// Creates an empty accumulator with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Contributions {
            entries: FxHashMap::with_capacity_and_hasher(capacity, Default::default()),
        }
    }

    /// Records one contribution to `record`.
    pub fn push(&mut self, record: T, weight: f64) {
        use std::collections::hash_map::Entry;
        match self.entries.entry(record) {
            Entry::Occupied(mut entry) => entry.get_mut().push(weight),
            Entry::Vacant(entry) => {
                entry.insert(Contribution::One(weight));
            }
        }
    }

    /// Number of distinct records with at least one contribution.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when no contribution has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolves every record's contributions in canonical order, dropping records whose
    /// total is negligible (see [`weights::is_negligible`]).
    pub fn into_dataset(self) -> WeightedDataset<T> {
        let mut out = WeightedDataset::with_capacity(self.entries.len());
        for (record, contribution) in self.entries {
            let total = contribution.finish();
            if !weights::is_negligible(total) {
                out.set_weight(record, total);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_sum_is_permutation_invariant() {
        // Values chosen so naive left-to-right sums differ between orderings.
        let values = [1e16, 1.0, -1e16, 3.5, 1e-3, -2.75, 1e8, -1e8];
        let mut forward = values.to_vec();
        let mut reverse: Vec<f64> = values.iter().rev().copied().collect();
        let mut rotated: Vec<f64> = values[3..].iter().chain(&values[..3]).copied().collect();
        let a = canonical_sum(&mut forward);
        let b = canonical_sum(&mut reverse);
        let c = canonical_sum(&mut rotated);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(a.to_bits(), c.to_bits());
    }

    #[test]
    fn contributions_are_order_insensitive_bitwise() {
        let pairs = [
            ("x", 0.1),
            ("x", 0.2),
            ("y", 1e9),
            ("x", 0.3),
            ("y", -1e9),
            ("x", -0.4),
            ("y", 7.5e-7),
        ];
        let mut forward = Contributions::new();
        for (r, w) in pairs {
            forward.push(r, w);
        }
        let mut reverse = Contributions::new();
        for &(r, w) in pairs.iter().rev() {
            reverse.push(r, w);
        }
        let a = forward.into_dataset();
        let b = reverse.into_dataset();
        assert_eq!(a, b);
        for (record, w) in a.iter() {
            assert_eq!(w.to_bits(), b.weight(record).to_bits());
        }
    }

    #[test]
    fn negligible_totals_are_dropped() {
        let mut c = Contributions::new();
        c.push("x", 1.0);
        c.push("x", -1.0);
        c.push("y", 0.5);
        let out = c.into_dataset();
        assert!(!out.contains(&"x"));
        assert_eq!(out.weight(&"y"), 0.5);
    }

    #[test]
    fn canonical_norm_matches_manual_sorted_sum() {
        let n = canonical_norm([3.0, -1.0, 0.5]);
        let mut sorted = [3.0, 1.0, 0.5];
        assert_eq!(n, canonical_sum(&mut sorted));
        assert!((n - 4.5).abs() < 1e-12);
    }
}
