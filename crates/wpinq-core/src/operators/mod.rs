//! Stable transformations over weighted datasets (Sections 2.3–2.8 of the paper).
//!
//! A transformation `T` is *stable* when `‖T(A) − T(A')‖ ≤ ‖A − A'‖` for all datasets
//! `A, A'` (and `‖T(A,B) − T(A',B')‖ ≤ ‖A − A'‖ + ‖B − B'‖` for binary transformations).
//! Stability lets transformations compose with differentially-private aggregations without
//! amplifying privacy cost: if `M` is ε-DP then `M(T(·))` is ε-DP (Theorem 1).
//!
//! Each operator here is a free function over [`WeightedDataset`](crate::WeightedDataset)s; the
//! `Queryable` front-end in the `wpinq` crate wraps them with privacy accounting. The
//! stability of `Join` and `GroupBy` — the two operators whose weight rescaling is subtle —
//! is proved in Appendix A of the paper and checked by property tests in this crate.

mod group_by;
mod join;
mod select;
mod select_many;
mod set_ops;
mod shave;

pub use group_by::{group_by, group_by_with_key};
pub use join::{join, join_build_probe, join_pairs, key_accumulator};
pub use select::{filter, select};
pub use select_many::{select_many, select_many_unit};
pub use set_ops::{concat, except, intersect, union};
pub use shave::{shave, shave_const};

#[cfg(test)]
pub(crate) mod test_support {
    use crate::dataset::WeightedDataset;

    /// Sample dataset `A` from Section 2.1 of the paper.
    pub fn sample_a() -> WeightedDataset<&'static str> {
        WeightedDataset::from_pairs([("1", 0.75), ("2", 2.0), ("3", 1.0)])
    }

    /// Sample dataset `B` from Section 2.1 of the paper.
    pub fn sample_b() -> WeightedDataset<&'static str> {
        WeightedDataset::from_pairs([("1", 3.0), ("4", 2.0)])
    }
}
