//! `Select` (per-record transformation) and `Where` (per-record filtering), Section 2.4.

use crate::accumulate::Contributions;
use crate::dataset::WeightedDataset;
use crate::record::Record;

/// Applies `f` to every record, accumulating the weights of records that map to the same
/// output: `Select(A, f)(x) = Σ_{y : f(y) = x} A(y)`.
///
/// Colliding contributions are summed in the canonical order of [`crate::accumulate`], so
/// the result is bitwise independent of the input's iteration order (and of how a sharded
/// evaluation interleaves them).
///
/// Stability: every unit of input weight becomes exactly one unit of output weight, so
/// `‖Select(A) − Select(A')‖ ≤ ‖A − A'‖`.
pub fn select<T, U, F>(data: &WeightedDataset<T>, f: F) -> WeightedDataset<U>
where
    T: Record,
    U: Record,
    F: Fn(&T) -> U,
{
    let mut out = Contributions::with_capacity(data.len());
    for (record, weight) in data.iter() {
        out.push(f(record), weight);
    }
    out.into_dataset()
}

/// Keeps only the records satisfying `predicate`:
/// `Where(A, p)(x) = p(x) · A(x)`.
///
/// Stability: output weights are a subset of input weights.
pub fn filter<T, P>(data: &WeightedDataset<T>, predicate: P) -> WeightedDataset<T>
where
    T: Record,
    P: Fn(&T) -> bool,
{
    let mut out = WeightedDataset::with_capacity(data.len());
    for (record, weight) in data.iter() {
        if predicate(record) {
            out.add_weight(record.clone(), weight);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::test_support::sample_a;
    use crate::weights::approx_eq;

    #[test]
    fn select_parity_example_from_paper() {
        // Section 2.4: Select with f(x) = x mod 2 over A gives {("0", 2.0), ("1", 1.75)}.
        let a = sample_a();
        let out = select(&a, |x| {
            let v: u32 = x.parse().unwrap();
            (v % 2).to_string()
        });
        assert_eq!(out.len(), 2);
        assert!(approx_eq(out.weight(&"0".to_string()), 2.0));
        assert!(approx_eq(out.weight(&"1".to_string()), 1.75));
    }

    #[test]
    fn select_preserves_total_weight() {
        let a = sample_a();
        let out = select(&a, |_| 0u8);
        assert!(approx_eq(out.weight(&0u8), a.norm()));
    }

    #[test]
    fn where_example_from_paper() {
        // Section 2.4: Where with predicate x² < 5 keeps {("1", 0.75), ("2", 2.0)}.
        let a = sample_a();
        let out = filter(&a, |x| {
            let v: i64 = x.parse().unwrap();
            v * v < 5
        });
        assert_eq!(out.len(), 2);
        assert!(approx_eq(out.weight(&"1"), 0.75));
        assert!(approx_eq(out.weight(&"2"), 2.0));
        assert_eq!(out.weight(&"3"), 0.0);
    }

    #[test]
    fn filter_with_constant_predicates() {
        let a = sample_a();
        assert_eq!(filter(&a, |_| true), a);
        assert!(filter(&a, |_| false).is_empty());
    }

    #[test]
    fn select_is_stable_on_specific_pair() {
        // ‖Select(A) − Select(A')‖ ≤ ‖A − A'‖ for a pair where records collapse together.
        let a = sample_a();
        let mut a2 = a.clone();
        a2.add_weight("3", -0.5);
        a2.add_weight("9", 1.0);
        let f = |x: &&str| x.parse::<u32>().unwrap() % 3;
        let d_in = a.distance(&a2);
        let d_out = select(&a, f).distance(&select(&a2, f));
        assert!(d_out <= d_in + 1e-9, "{d_out} > {d_in}");
    }
}
