//! `Union`, `Intersect`, `Concat`, `Except`: element-wise binary transformations
//! (Section 2.6).

use crate::dataset::WeightedDataset;
use crate::record::Record;

/// Element-wise maximum: `Union(A, B)(x) = max(A(x), B(x))`.
pub fn union<T: Record>(a: &WeightedDataset<T>, b: &WeightedDataset<T>) -> WeightedDataset<T> {
    let mut out = WeightedDataset::with_capacity(a.len() + b.len());
    for (record, wa) in a.iter() {
        out.set_weight(record.clone(), wa.max(b.weight(record)));
    }
    for (record, wb) in b.iter() {
        if !a.contains(record) {
            out.set_weight(record.clone(), wb.max(0.0));
        }
    }
    out
}

/// Element-wise minimum: `Intersect(A, B)(x) = min(A(x), B(x))`.
pub fn intersect<T: Record>(a: &WeightedDataset<T>, b: &WeightedDataset<T>) -> WeightedDataset<T> {
    let mut out = WeightedDataset::new();
    for (record, wa) in a.iter() {
        out.set_weight(record.clone(), wa.min(b.weight(record)));
    }
    for (record, wb) in b.iter() {
        if !a.contains(record) {
            out.set_weight(record.clone(), wb.min(0.0));
        }
    }
    out
}

/// Element-wise addition: `Concat(A, B)(x) = A(x) + B(x)`.
pub fn concat<T: Record>(a: &WeightedDataset<T>, b: &WeightedDataset<T>) -> WeightedDataset<T> {
    let mut out = a.clone();
    out.merge(b);
    out
}

/// Element-wise subtraction: `Except(A, B)(x) = A(x) − B(x)`.
pub fn except<T: Record>(a: &WeightedDataset<T>, b: &WeightedDataset<T>) -> WeightedDataset<T> {
    let mut out = a.clone();
    for (record, wb) in b.iter() {
        out.add_weight(record.clone(), -wb);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::test_support::{sample_a, sample_b};
    use crate::weights::approx_eq;

    #[test]
    fn concat_example_from_paper() {
        // Section 2.6: Concat(A, B) = {("1", 3.75), ("2", 2.0), ("3", 1.0), ("4", 2.0)}.
        let out = concat(&sample_a(), &sample_b());
        assert_eq!(out.len(), 4);
        assert!(approx_eq(out.weight(&"1"), 3.75));
        assert!(approx_eq(out.weight(&"2"), 2.0));
        assert!(approx_eq(out.weight(&"3"), 1.0));
        assert!(approx_eq(out.weight(&"4"), 2.0));
    }

    #[test]
    fn intersect_example_from_paper() {
        // Section 2.6: Intersect(A, B) = {("1", 0.75)}.
        let out = intersect(&sample_a(), &sample_b());
        assert_eq!(out.len(), 1);
        assert!(approx_eq(out.weight(&"1"), 0.75));
    }

    #[test]
    fn union_takes_elementwise_maximum() {
        let out = union(&sample_a(), &sample_b());
        assert!(approx_eq(out.weight(&"1"), 3.0));
        assert!(approx_eq(out.weight(&"2"), 2.0));
        assert!(approx_eq(out.weight(&"3"), 1.0));
        assert!(approx_eq(out.weight(&"4"), 2.0));
    }

    #[test]
    fn except_subtracts_elementwise() {
        let out = except(&sample_a(), &sample_b());
        assert!(approx_eq(out.weight(&"1"), -2.25));
        assert!(approx_eq(out.weight(&"2"), 2.0));
        assert!(approx_eq(out.weight(&"4"), -2.0));
    }

    #[test]
    fn except_then_concat_roundtrips() {
        let a = sample_a();
        let b = sample_b();
        let diff = except(&a, &b);
        let restored = concat(&diff, &b);
        assert!(restored.approx_eq(&a, 1e-9));
    }

    #[test]
    fn union_and_intersect_are_commutative() {
        let a = sample_a();
        let b = sample_b();
        assert!(union(&a, &b).approx_eq(&union(&b, &a), 1e-12));
        assert!(intersect(&a, &b).approx_eq(&intersect(&b, &a), 1e-12));
    }

    #[test]
    fn union_with_empty_keeps_positive_weights() {
        let a = sample_a();
        let empty = WeightedDataset::new();
        assert!(union(&a, &empty).approx_eq(&a, 1e-12));
        assert!(intersect(&a, &empty).is_empty());
    }

    #[test]
    fn intersect_with_negative_weights_takes_minimum() {
        let a = WeightedDataset::from_pairs([("x", -1.0), ("y", 2.0)]);
        let b = WeightedDataset::from_pairs([("x", 3.0), ("y", 1.0)]);
        let out = intersect(&a, &b);
        assert!(approx_eq(out.weight(&"x"), -1.0));
        assert!(approx_eq(out.weight(&"y"), 1.0));
        // A negative weight present only in A surfaces through min(w, 0) = w.
        let c = WeightedDataset::from_pairs([("z", -2.0)]);
        let out2 = intersect(&c, &b);
        assert!(approx_eq(out2.weight(&"z"), -2.0));
    }

    #[test]
    fn binary_stability_on_specific_pairs() {
        // ‖T(A,B) − T(A',B)‖ ≤ ‖A − A'‖ for each of the four operators.
        let a = sample_a();
        let b = sample_b();
        let mut a2 = a.clone();
        a2.add_weight("1", 0.5);
        a2.add_weight("9", -0.25);
        let d_in = a.distance(&a2);
        for (name, out, out2) in [
            ("union", union(&a, &b), union(&a2, &b)),
            ("intersect", intersect(&a, &b), intersect(&a2, &b)),
            ("concat", concat(&a, &b), concat(&a2, &b)),
            ("except", except(&a, &b), except(&a2, &b)),
        ] {
            let d_out = out.distance(&out2);
            assert!(d_out <= d_in + 1e-9, "{name}: {d_out} > {d_in}");
        }
    }
}
