//! `GroupBy`: MapReduce-style grouping with the prefix-halving weight rule of Section 2.5.

use rustc_hash::FxHashMap;

use crate::dataset::WeightedDataset;
use crate::record::Record;
use crate::weights;

/// Groups records by `key`, applies `reduce` to weighted prefixes of each group, and emits
/// `(key, reduce(prefix))` records.
///
/// For a part `A_k` with records ordered non-increasingly by weight `x₀, x₁, …, x_{n−1}`,
/// the prefix `{x_j : j ≤ i}` is emitted with weight `(A_k(x_i) − A_k(x_{i+1})) / 2`
/// (taking `A_k(x_n) = 0`). When every record in the group has equal weight `w` — the usual
/// case, since graph queries group unit-weight edges — only the full group appears, with
/// weight `w/2`. Records with non-positive weight do not participate.
///
/// The halving is what buys stability: adding or removing one input record can replace one
/// output group by another (two changed records), so each may carry at most half the input
/// weight (Theorem 5 / Appendix A).
pub fn group_by<T, K, R, KF, RF>(
    data: &WeightedDataset<T>,
    key: KF,
    reduce: RF,
) -> WeightedDataset<(K, R)>
where
    T: Record,
    K: Record,
    R: Record,
    KF: Fn(&T) -> K,
    RF: Fn(&[T]) -> R,
{
    group_by_with_key(data, key, |_, group| reduce(group))
}

/// [`group_by`] where the reducer also receives the group key.
pub fn group_by_with_key<T, K, R, KF, RF>(
    data: &WeightedDataset<T>,
    key: KF,
    reduce: RF,
) -> WeightedDataset<(K, R)>
where
    T: Record,
    K: Record,
    R: Record,
    KF: Fn(&T) -> K,
    RF: Fn(&K, &[T]) -> R,
{
    // Partition by key.
    let mut parts: FxHashMap<K, Vec<(T, f64)>> = FxHashMap::default();
    for (record, weight) in data.iter() {
        if weight <= 0.0 {
            continue;
        }
        parts
            .entry(key(record))
            .or_default()
            .push((record.clone(), weight));
    }

    let mut out = WeightedDataset::new();
    for (k, mut members) in parts {
        // Non-increasing weight order; ties broken by record order for determinism.
        members.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        let mut prefix: Vec<T> = Vec::with_capacity(members.len());
        for i in 0..members.len() {
            prefix.push(members[i].0.clone());
            let next_weight = members.get(i + 1).map(|m| m.1).unwrap_or(0.0);
            let emitted = (members[i].1 - next_weight) / 2.0;
            if emitted > 0.0 && !weights::is_negligible(emitted) {
                out.add_weight((k.clone(), reduce(&k, &prefix)), emitted);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::approx_eq;

    /// Counts the records in a group — the reducer used by the paper's degree queries.
    fn count_reducer<T>(group: &[T]) -> u64 {
        group.len() as u64
    }

    #[test]
    fn group_by_parity_example_from_paper() {
        // Section 2.5: grouping C by parity produces
        // {("odd,{5,3,1}", 0.375), ("odd,{5,3}", 0.125), ("odd,{5}", 0.5), ("even,{2,4}", 1.0)}.
        let c = WeightedDataset::from_pairs([
            ("1", 0.75),
            ("2", 2.0),
            ("3", 1.0),
            ("4", 2.0),
            ("5", 2.0),
        ]);
        let out = group_by(
            &c,
            |x| x.parse::<u32>().unwrap() % 2,
            |group| {
                let mut members: Vec<&str> = group.to_vec();
                members.sort_unstable();
                members.join(",")
            },
        );
        assert_eq!(out.len(), 4);
        assert!(approx_eq(out.weight(&(1, "1,3,5".to_string())), 0.375));
        assert!(approx_eq(out.weight(&(1, "3,5".to_string())), 0.125));
        assert!(approx_eq(out.weight(&(1, "5".to_string())), 0.5));
        assert!(approx_eq(out.weight(&(0, "2,4".to_string())), 1.0));
    }

    #[test]
    fn unit_weight_groups_emit_only_the_full_group_at_half_weight() {
        // The common case in graph queries: all inputs have weight 1.0, so each group key
        // yields exactly one record (the whole group) with weight 0.5.
        let edges = WeightedDataset::from_records([(1u32, 2u32), (1, 3), (1, 4), (2, 3)]);
        let degrees = group_by(&edges, |e| e.0, count_reducer);
        assert_eq!(degrees.len(), 2);
        assert!(approx_eq(degrees.weight(&(1, 3)), 0.5));
        assert!(approx_eq(degrees.weight(&(2, 1)), 0.5));
    }

    #[test]
    fn equal_weight_groups_with_non_unit_weight() {
        let data = WeightedDataset::from_pairs([("a", 2.0), ("b", 2.0), ("c", 2.0)]);
        let out = group_by(&data, |_| 0u8, |g| g.len() as u64);
        assert_eq!(out.len(), 1);
        assert!(approx_eq(out.weight(&(0, 3)), 1.0));
    }

    #[test]
    fn output_norm_is_half_the_heaviest_record_per_group() {
        // The prefix weights (A_k(x_i) − A_k(x_{i+1}))/2 telescope to A_k(x_0)/2, so each
        // group contributes exactly half its maximum record weight to the output norm.
        let data = WeightedDataset::from_pairs([("a", 0.5), ("b", 1.5), ("c", 3.0), ("d", 1.0)]);
        let out = group_by(&data, |_| 0u8, |g| g.len() as u64);
        assert!(approx_eq(out.norm(), 3.0 / 2.0));

        // Two groups: each contributes max/2.
        let data2 = WeightedDataset::from_pairs([("a", 2.0), ("b", 1.0), ("x", 4.0), ("y", 0.5)]);
        let out2 = group_by(&data2, |r| (*r > "m") as u8, |g| g.len() as u64);
        assert!(approx_eq(out2.norm(), 2.0 / 2.0 + 4.0 / 2.0));
    }

    #[test]
    fn non_positive_weights_are_ignored() {
        let data = WeightedDataset::from_pairs([("a", 1.0), ("b", -4.0)]);
        let out = group_by(&data, |_| 0u8, |g| g.len() as u64);
        assert_eq!(out.len(), 1);
        assert!(approx_eq(out.weight(&(0, 1)), 0.5));
    }

    #[test]
    fn reducer_sees_prefixes_in_non_increasing_weight_order() {
        let data = WeightedDataset::from_pairs([("light", 1.0), ("heavy", 3.0)]);
        let out = group_by(&data, |_| 0u8, |g| g.first().cloned().unwrap());
        // Both the singleton prefix {heavy} and the full prefix start with "heavy".
        assert!(approx_eq(out.weight(&(0, "heavy")), 1.0 + 0.5));
        assert_eq!(out.weight(&(0, "light")), 0.0);
    }

    #[test]
    fn group_by_with_key_passes_the_key() {
        let data = WeightedDataset::from_records([(1u32, 'a'), (1, 'b'), (2, 'c')]);
        let out = group_by_with_key(
            &data,
            |r| r.0,
            |k, group| (*k as u64) * 10 + group.len() as u64,
        );
        assert!(approx_eq(out.weight(&(1, 12)), 0.5));
        assert!(approx_eq(out.weight(&(2, 21)), 0.5));
    }

    #[test]
    fn stability_on_specific_pair() {
        // Replacing one unit-weight record flips one output group to another; total change
        // is 2 · 0.5 = 1.0 = ‖A − A'‖ in the worst case, never more.
        let a = WeightedDataset::from_records([(1u32, 'a'), (1, 'b'), (2, 'c')]);
        let mut a2 = a.clone();
        a2.remove(&(1u32, 'b'));
        a2.add_weight((1u32, 'z'), 1.0);
        let d_in = a.distance(&a2);
        let key = |r: &(u32, char)| r.0;
        let reduce = |g: &[(u32, char)]| {
            let mut s: Vec<char> = g.iter().map(|r| r.1).collect();
            s.sort_unstable();
            s.into_iter().collect::<String>()
        };
        let d_out = group_by(&a, key, reduce).distance(&group_by(&a2, key, reduce));
        assert!(d_out <= d_in + 1e-9, "{d_out} > {d_in}");
    }
}
