//! `Shave`: decomposes one heavy record into many indexed records of smaller weight
//! (Section 2.8).

use crate::dataset::WeightedDataset;
use crate::record::Record;
use crate::weights;

/// Breaks each record `x` of weight `A(x)` into records `(x, 0), (x, 1), …` whose weights
/// follow the schedule `f(x) = ⟨w₀, w₁, …⟩` until the record's weight is exhausted:
///
/// `Shave(A, f)((x, i)) = max(0, min(f(x)ᵢ, A(x) − Σ_{j<i} f(x)ⱼ))`.
///
/// `Select((x, i) ↦ x)` is the functional inverse: it re-accumulates the original weights.
/// Records with non-positive weight produce no output.
pub fn shave<T, F, I>(data: &WeightedDataset<T>, schedule: F) -> WeightedDataset<(T, u64)>
where
    T: Record,
    F: Fn(&T) -> I,
    I: IntoIterator<Item = f64>,
{
    let mut out = WeightedDataset::new();
    for (record, weight) in data.iter() {
        if weight <= 0.0 {
            continue;
        }
        let mut remaining = weight;
        for (index, step) in schedule(record).into_iter().enumerate() {
            if remaining <= 0.0 || weights::is_negligible(remaining) {
                break;
            }
            let emitted = step.min(remaining).max(0.0);
            if emitted > 0.0 {
                out.add_weight((record.clone(), index as u64), emitted);
            }
            remaining -= step.max(0.0);
        }
    }
    out
}

/// [`shave`] with the constant schedule `⟨w, w, w, …⟩` — the form every query in the paper
/// uses (`Shave(1.0)` for degree sequences, `Shave(0.5)` for the edges → nodes conversion).
///
/// # Panics
/// Panics if `step` is not strictly positive (the schedule would never exhaust a record).
pub fn shave_const<T>(data: &WeightedDataset<T>, step: f64) -> WeightedDataset<(T, u64)>
where
    T: Record,
{
    assert!(
        step > 0.0 && step.is_finite(),
        "shave step must be positive and finite, got {step}"
    );
    shave(data, |_| std::iter::repeat(step))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::select;
    use crate::operators::test_support::sample_a;
    use crate::weights::approx_eq;

    #[test]
    fn shave_example_from_paper() {
        // Section 2.8: Shave(A, ⟨1,1,1,…⟩) =
        // {(⟨1,0⟩, 0.75), (⟨2,0⟩, 1.0), (⟨2,1⟩, 1.0), (⟨3,0⟩, 1.0)}.
        let a = sample_a();
        let out = shave_const(&a, 1.0);
        assert_eq!(out.len(), 4);
        assert!(approx_eq(out.weight(&("1", 0)), 0.75));
        assert!(approx_eq(out.weight(&("2", 0)), 1.0));
        assert!(approx_eq(out.weight(&("2", 1)), 1.0));
        assert!(approx_eq(out.weight(&("3", 0)), 1.0));
    }

    #[test]
    fn select_is_shaves_functional_inverse() {
        let a = sample_a();
        let shaved = shave_const(&a, 1.0);
        let recovered = select(&shaved, |(x, _)| *x);
        assert!(recovered.approx_eq(&a, 1e-9));
    }

    #[test]
    fn fractional_step_splits_into_more_records() {
        let data = WeightedDataset::from_pairs([("v", 1.0)]);
        let out = shave_const(&data, 0.5);
        assert_eq!(out.len(), 2);
        assert!(approx_eq(out.weight(&("v", 0)), 0.5));
        assert!(approx_eq(out.weight(&("v", 1)), 0.5));
    }

    #[test]
    fn partial_last_record_gets_the_remainder() {
        let data = WeightedDataset::from_pairs([("v", 1.3)]);
        let out = shave_const(&data, 0.5);
        assert_eq!(out.len(), 3);
        assert!(approx_eq(out.weight(&("v", 2)), 0.3));
        assert!(approx_eq(out.norm(), 1.3));
    }

    #[test]
    fn custom_schedule_is_respected() {
        let data = WeightedDataset::from_pairs([("v", 2.0)]);
        let out = shave(&data, |_| vec![0.25, 0.75, 5.0]);
        assert!(approx_eq(out.weight(&("v", 0)), 0.25));
        assert!(approx_eq(out.weight(&("v", 1)), 0.75));
        assert!(approx_eq(out.weight(&("v", 2)), 1.0));
    }

    #[test]
    fn finite_schedule_truncates_excess_weight() {
        // If the schedule runs out before the weight is exhausted, remaining weight is dropped
        // (the paper's definition only emits as many terms as Σᵢ wᵢ ≤ A(x) covers).
        let data = WeightedDataset::from_pairs([("v", 10.0)]);
        let out = shave(&data, |_| vec![1.0, 1.0]);
        assert!(approx_eq(out.norm(), 2.0));
    }

    #[test]
    fn non_positive_weights_produce_nothing() {
        let data = WeightedDataset::from_pairs([("neg", -2.0)]);
        let out = shave_const(&data, 1.0);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic]
    fn zero_step_is_rejected() {
        let data = WeightedDataset::from_pairs([("v", 1.0)]);
        let _ = shave_const(&data, 0.0);
    }

    #[test]
    fn degree_ccdf_pattern() {
        // The degree-CCDF query shaves node weights (a, d_a) into unit slices and keeps the
        // index: record i ends up with weight = #nodes of degree > i.
        let node_weights = WeightedDataset::from_pairs([("a", 3.0), ("b", 1.0), ("c", 2.0)]);
        let shaved = shave_const(&node_weights, 1.0);
        let ccdf = select(&shaved, |(_, i)| *i);
        assert!(approx_eq(ccdf.weight(&0), 3.0)); // all three nodes have degree > 0
        assert!(approx_eq(ccdf.weight(&1), 2.0)); // a and c have degree > 1
        assert!(approx_eq(ccdf.weight(&2), 1.0)); // only a has degree > 2
        assert_eq!(ccdf.weight(&3), 0.0);
    }
}
