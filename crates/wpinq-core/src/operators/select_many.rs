//! `SelectMany`: per-record one-to-many transformation (Section 2.4).

use crate::dataset::WeightedDataset;
use crate::record::Record;

/// Maps every record to a weighted dataset and accumulates the results, normalising each
/// produced dataset to at most unit norm before scaling it by the input record's weight:
///
/// `SelectMany(A, f) = Σ_x A(x) · f(x) / max(1, ‖f(x)‖)`.
///
/// Different inputs may produce different numbers of outputs; the normalisation depends on
/// the number actually produced rather than on a worst-case bound, which is the key
/// flexibility the paper highlights (e.g. frequent-itemset mining, edges → endpoints).
pub fn select_many<T, U, F>(data: &WeightedDataset<T>, f: F) -> WeightedDataset<U>
where
    T: Record,
    U: Record,
    F: Fn(&T) -> WeightedDataset<U>,
{
    let mut out = crate::accumulate::Contributions::new();
    for (record, weight) in data.iter() {
        let produced = f(record);
        let norm = produced.norm();
        if norm == 0.0 {
            continue;
        }
        let scale = weight / norm.max(1.0);
        for (u, w) in produced.iter() {
            out.push(u.clone(), w * scale);
        }
    }
    out.into_dataset()
}

/// Convenience form of [`select_many`] where `f` returns a list of records, each implicitly
/// carrying weight `1.0` (the common case in the paper's graph queries).
pub fn select_many_unit<T, U, F, I>(data: &WeightedDataset<T>, f: F) -> WeightedDataset<U>
where
    T: Record,
    U: Record,
    I: IntoIterator<Item = U>,
    F: Fn(&T) -> I,
{
    select_many(data, |record| WeightedDataset::from_records(f(record)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::test_support::sample_a;
    use crate::weights::approx_eq;

    #[test]
    fn select_many_example_from_paper() {
        // Section 2.4: f(x) = {1, 2, ..., x} with unit weights over A gives
        // {("1", 0.75 + 1.0 + 1/3), ("2", 1.0 + 1/3), ("3", 1/3)}.
        let a = sample_a();
        let out = select_many_unit(&a, |x| {
            let v: u32 = x.parse().unwrap();
            (1..=v).collect::<Vec<_>>()
        });
        assert_eq!(out.len(), 3);
        assert!(approx_eq(out.weight(&1), 0.75 + 1.0 + 1.0 / 3.0));
        assert!(approx_eq(out.weight(&2), 1.0 + 1.0 / 3.0));
        assert!(approx_eq(out.weight(&3), 1.0 / 3.0));
    }

    #[test]
    fn small_outputs_are_not_scaled_up() {
        // A record producing a dataset of norm < 1 is scaled by the record weight only
        // (max(1, ‖f(x)‖) = 1), never scaled up.
        let data = WeightedDataset::from_pairs([(1u32, 2.0)]);
        let out = select_many(&data, |_| WeightedDataset::from_pairs([(9u32, 0.25)]));
        assert!(approx_eq(out.weight(&9), 0.5));
    }

    #[test]
    fn large_outputs_are_normalised() {
        // A record of weight w producing n unit-weight outputs yields n outputs of weight w/n.
        let data = WeightedDataset::from_pairs([(0u32, 3.0)]);
        let out = select_many_unit(&data, |_| vec![10u32, 11, 12, 13]);
        for r in 10u32..=13 {
            assert!(approx_eq(out.weight(&r), 0.75));
        }
        assert!(approx_eq(out.norm(), 3.0));
    }

    #[test]
    fn empty_production_contributes_nothing() {
        let data = WeightedDataset::from_pairs([(0u32, 3.0)]);
        let out: WeightedDataset<u32> = select_many_unit(&data, |_| Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn output_norm_never_exceeds_input_norm_for_unit_productions() {
        let data = WeightedDataset::from_pairs([(1u32, 1.5), (2, 0.5), (3, 2.0)]);
        let out = select_many_unit(&data, |x| (0..*x).collect::<Vec<_>>());
        assert!(out.norm() <= data.norm() + 1e-9);
    }

    #[test]
    fn edges_to_endpoints_pattern() {
        // The paper's edges → nodes first step: each unit-weight edge contributes 0.5 to each
        // endpoint, so a node of degree d accumulates weight d/2.
        let edges = WeightedDataset::from_records([(1u32, 2u32), (1, 3), (2, 3)]);
        let nodes = select_many_unit(&edges, |&(a, b)| vec![a, b]);
        assert!(approx_eq(nodes.weight(&1), 1.0));
        assert!(approx_eq(nodes.weight(&2), 1.0));
        assert!(approx_eq(nodes.weight(&3), 1.0));
    }

    #[test]
    fn stability_on_specific_pair() {
        let a = sample_a();
        let mut a2 = a.clone();
        a2.add_weight("2", -1.0);
        a2.add_weight("7", 0.25);
        let f = |x: &&str| {
            let v: u32 = x.parse().unwrap();
            (0..v).collect::<Vec<_>>()
        };
        let d_in = a.distance(&a2);
        let d_out = select_many_unit(&a, f).distance(&select_many_unit(&a2, f));
        assert!(d_out <= d_in + 1e-9, "{d_out} > {d_in}");
    }
}
