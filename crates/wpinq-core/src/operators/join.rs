//! `Join`: the weight-rescaling equi-join of Section 2.7, the workhorse of graph analysis.

use std::hash::Hash;

use rustc_hash::FxHashMap;

use crate::dataset::WeightedDataset;
use crate::record::Record;

/// Matches records of `a` and `b` whose keys agree and emits `result(a, b)` for every pair,
/// scaling the weight of every match under key `k` by `1 / (‖A_k‖ + ‖B_k‖)`:
///
/// `Join(A, B) = Σ_k (A_k × B_kᵀ) / (‖A_k‖ + ‖B_k‖)`   (equation (1) of the paper).
///
/// Both the per-key norms and the accumulation of colliding output contributions use the
/// canonical summation order of [`crate::accumulate`], so the result is bitwise
/// independent of input iteration order — the property the sharded executor relies on.
///
/// Unlike the standard relational join (where one record can produce unboundedly many
/// matches and the transformation is unstable), this data-dependent rescaling makes the
/// operator stable: `‖Join(A,B) − Join(A',B')‖ ≤ ‖A − A'‖ + ‖B − B'‖` (Theorem 4).
pub fn join<A, B, K, R, KA, KB, RF>(
    a: &WeightedDataset<A>,
    b: &WeightedDataset<B>,
    key_a: KA,
    key_b: KB,
    result: RF,
) -> WeightedDataset<R>
where
    A: Record,
    B: Record,
    K: Clone + Eq + Hash,
    R: Record,
    KA: Fn(&A) -> K,
    KB: Fn(&B) -> K,
    RF: Fn(&A, &B) -> R,
{
    // Partition both inputs by key; norms are computed canonically per part.
    let mut parts_a: FxHashMap<K, Vec<(&A, f64)>> = FxHashMap::default();
    for (record, weight) in a.iter() {
        parts_a
            .entry(key_a(record))
            .or_default()
            .push((record, weight));
    }
    let mut parts_b: FxHashMap<K, Vec<(&B, f64)>> = FxHashMap::default();
    for (record, weight) in b.iter() {
        parts_b
            .entry(key_b(record))
            .or_default()
            .push((record, weight));
    }

    let mut out = crate::accumulate::Contributions::new();
    for (key, recs_a) in &parts_a {
        let Some(recs_b) = parts_b.get(key) else {
            continue;
        };
        let denominator = crate::accumulate::canonical_norm(recs_a.iter().map(|(_, w)| *w))
            + crate::accumulate::canonical_norm(recs_b.iter().map(|(_, w)| *w));
        if denominator <= 0.0 {
            continue;
        }
        for (ra, wa) in recs_a {
            for (rb, wb) in recs_b {
                out.push(result(ra, rb), wa * wb / denominator);
            }
        }
    }
    out.into_dataset()
}

/// [`join`] with the identity result selector: emits `(a, b)` pairs.
pub fn join_pairs<A, B, K, KA, KB>(
    a: &WeightedDataset<A>,
    b: &WeightedDataset<B>,
    key_a: KA,
    key_b: KB,
) -> WeightedDataset<(A, B)>
where
    A: Record,
    B: Record,
    K: Clone + Eq + Hash,
    KA: Fn(&A) -> K,
    KB: Fn(&B) -> K,
{
    join(a, b, key_a, key_b, |ra, rb| (ra.clone(), rb.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::test_support::{sample_a, sample_b};
    use crate::weights::approx_eq;

    #[test]
    fn join_parity_example_from_paper() {
        // Section 2.7: joining A and B on parity. Note the paper's worked example lists
        // A₁ = {("1", 0.5), ("3", 1.0)} (a typo for 0.75 in the prose) and normalises by
        // ‖A₁‖ + ‖B₁‖ = 4.5; we follow the definition, so with A("1") = 0.75 the odd-key
        // norm is 0.75 + 1.0 + 3.0 = 4.75.
        let a = sample_a();
        let b = sample_b();
        let parity = |x: &&str| x.parse::<u32>().unwrap() % 2;
        let out = join_pairs(&a, &b, parity, parity);
        assert_eq!(out.len(), 3);
        // Even key: {"2"} × {"4"} / (2.0 + 2.0)
        assert!(approx_eq(out.weight(&("2", "4")), 2.0 * 2.0 / 4.0));
        // Odd key: {"1","3"} × {"1"} / (1.75 + 3.0)
        assert!(approx_eq(out.weight(&("1", "1")), 0.75 * 3.0 / 4.75));
        assert!(approx_eq(out.weight(&("3", "1")), 1.0 * 3.0 / 4.75));
    }

    #[test]
    fn join_with_exact_paper_inputs_matches_paper_numbers() {
        // Using the dataset exactly as printed in the worked example (A("1") = 0.5), the
        // outputs are {("⟨2,4⟩", 1.0), ("⟨1,1⟩", 0.33…), ("⟨3,1⟩", 0.66…)}.
        let a = WeightedDataset::from_pairs([("1", 0.5), ("2", 2.0), ("3", 1.0)]);
        let b = sample_b();
        let parity = |x: &&str| x.parse::<u32>().unwrap() % 2;
        let out = join_pairs(&a, &b, parity, parity);
        assert!(approx_eq(out.weight(&("2", "4")), 1.0));
        assert!(approx_eq(out.weight(&("1", "1")), 1.0 / 3.0));
        assert!(approx_eq(out.weight(&("3", "1")), 2.0 / 3.0));
    }

    #[test]
    fn keys_present_in_only_one_input_produce_nothing() {
        let a = WeightedDataset::from_pairs([(1u32, 1.0)]);
        let b = WeightedDataset::from_pairs([(2u32, 1.0)]);
        let out = join_pairs(&a, &b, |x| *x, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn self_join_on_length_two_paths_scales_by_degree() {
        // Section 2.7 "Join and paths": joining a symmetric edge set with itself on
        // dst = src yields paths (a, b, c) with weight 1/(2·d_b).
        let edges: Vec<(u32, u32)> = vec![(1, 2), (2, 1), (2, 3), (3, 2), (1, 3), (3, 1)];
        let edges = WeightedDataset::from_records(edges);
        let paths = join(&edges, &edges, |e| e.1, |e| e.0, |x, y| (x.0, x.1, y.1));
        // Node 2 has degree 2, so path (1, 2, 3) should have weight 1/(2·2) = 0.25.
        assert!(approx_eq(paths.weight(&(1, 2, 3)), 0.25));
        // Path (1, 2, 1) also exists (cycles are filtered later by the analyses).
        assert!(approx_eq(paths.weight(&(1, 2, 1)), 0.25));
    }

    #[test]
    fn result_selector_accumulates_collisions() {
        // Two distinct matches mapping to the same output record accumulate weight.
        let a = WeightedDataset::from_pairs([((1u32, 'x'), 1.0), ((1, 'y'), 1.0)]);
        let b = WeightedDataset::from_pairs([(1u32, 2.0)]);
        let out = join(&a, &b, |r| r.0, |r| *r, |_, rb| *rb);
        // ‖A₁‖ = 2, ‖B₁‖ = 2 → each match has weight 1·2/4 = 0.5, and both collapse onto
        // output record 1.
        assert!(approx_eq(out.weight(&1), 1.0));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn unary_stability_on_specific_pair() {
        let a = sample_a();
        let b = sample_b();
        let mut a2 = a.clone();
        a2.add_weight("3", 1.0);
        a2.add_weight("5", 0.5);
        let parity = |x: &&str| x.parse::<u32>().unwrap() % 2;
        let d_in = a.distance(&a2);
        let out = join_pairs(&a, &b, parity, parity);
        let out2 = join_pairs(&a2, &b, parity, parity);
        assert!(out.distance(&out2) <= d_in + 1e-9);
    }

    #[test]
    fn output_norm_is_at_most_half_of_combined_input_norms() {
        // For any key, ‖A_k‖·‖B_k‖ / (‖A_k‖+‖B_k‖) ≤ min(‖A_k‖, ‖B_k‖) ≤ (‖A_k‖+‖B_k‖)/2.
        let a = sample_a();
        let b = sample_b();
        let parity = |x: &&str| x.parse::<u32>().unwrap() % 2;
        let out = join_pairs(&a, &b, parity, parity);
        assert!(out.norm() <= (a.norm() + b.norm()) / 2.0 + 1e-9);
    }
}
