//! `Join`: the weight-rescaling equi-join of Section 2.7, the workhorse of graph analysis.

use std::hash::Hash;

use rustc_hash::FxHashMap;

use crate::dataset::WeightedDataset;
use crate::record::Record;

/// Matches records of `a` and `b` whose keys agree and emits `result(a, b)` for every pair,
/// scaling the weight of every match under key `k` by `1 / (‖A_k‖ + ‖B_k‖)`:
///
/// `Join(A, B) = Σ_k (A_k × B_kᵀ) / (‖A_k‖ + ‖B_k‖)`   (equation (1) of the paper).
///
/// The kernel is **asymmetric**: only the smaller input is materialised as a key-indexed
/// hash table; the larger input is streamed past it twice (once to collect per-key norms,
/// once to emit matches). This is what makes the optimizer's cardinality-driven join
/// input ordering pay off proportionally — the hash-build cost follows the small side.
///
/// Accumulation is **two-level canonical**: contributions are first resolved per key
/// (each key's colliding output contributions summed in the canonical order of
/// [`crate::accumulate`], negligible per-key totals pruned), then the per-key totals of
/// records matched under several keys are summed canonically across keys. The per-match
/// weight `w_a·w_b / (‖A_k‖ + ‖B_k‖)` is built from commutative float operations, so the
/// result is bitwise independent of input iteration order *and* of which side is the
/// build side — the property the sharded executor relies on. The per-key grouping
/// additionally makes a batch join bitwise equal to loading the same data into the
/// *incremental* join (whose delta outputs are inherently per-key), which is what lets
/// the equivalence property tests pin batch ≡ incremental exactly rather than to a
/// tolerance.
///
/// Unlike the standard relational join (where one record can produce unboundedly many
/// matches and the transformation is unstable), this data-dependent rescaling makes the
/// operator stable: `‖Join(A,B) − Join(A',B')‖ ≤ ‖A − A'‖ + ‖B − B'‖` (Theorem 4).
pub fn join<A, B, K, R, KA, KB, RF>(
    a: &WeightedDataset<A>,
    b: &WeightedDataset<B>,
    key_a: KA,
    key_b: KB,
    result: RF,
) -> WeightedDataset<R>
where
    A: Record,
    B: Record,
    K: Clone + Eq + Hash,
    R: Record,
    KA: Fn(&A) -> K,
    KB: Fn(&B) -> K,
    RF: Fn(&A, &B) -> R,
{
    let mut per_key: FxHashMap<K, crate::accumulate::Contributions<R>> = FxHashMap::default();
    if a.len() <= b.len() {
        join_build_probe(
            a.iter(),
            b.iter(),
            &key_a,
            &key_b,
            |key, part, rb, w_probe, denominator| {
                let acc = key_accumulator(&mut per_key, key);
                for (ra, w_build) in part {
                    acc.push(result(ra, rb), w_build * w_probe / denominator);
                }
            },
        );
    } else {
        join_build_probe(
            b.iter(),
            a.iter(),
            &key_b,
            &key_a,
            |key, part, ra, w_probe, denominator| {
                let acc = key_accumulator(&mut per_key, key);
                for (rb, w_build) in part {
                    acc.push(result(ra, rb), w_build * w_probe / denominator);
                }
            },
        );
    }
    let mut out = crate::accumulate::Contributions::new();
    for (_, contributions) in per_key {
        for (record, total) in contributions.into_dataset() {
            out.push(record, total);
        }
    }
    out.into_dataset()
}

/// The per-key output accumulator for `key`, cloning the key only on first sight (the
/// callers sit on the join's per-match path, so this runs once per probe record rather
/// than once per match).
pub fn key_accumulator<'m, K, R>(
    per_key: &'m mut FxHashMap<K, crate::accumulate::Contributions<R>>,
    key: &K,
) -> &'m mut crate::accumulate::Contributions<R>
where
    K: Clone + Eq + Hash,
    R: Record,
{
    if !per_key.contains_key(key) {
        per_key.insert(key.clone(), crate::accumulate::Contributions::new());
    }
    per_key.get_mut(key).expect("present or just inserted")
}

/// The asymmetric core shared by the batch and sharded join kernels: hash-index the
/// (smaller) `build` side by key, stream the (larger) `probe` side past it — one pass to
/// collect per-key probe norms, one to emit matches.
/// `emit_matches(key, build_part, probe_record, probe_weight, denominator)` is called
/// once per matching probe record with the key's entire build part; each match's weight
/// is `w_build·w_probe / denominator` with `denominator = ‖build_k‖ + ‖probe_k‖`,
/// bitwise identical whichever input plays the build role (float `+` and `·` are
/// commutative, and the norms are canonical).
pub fn join_build_probe<'s, 'l, S, L, K, KS, KL>(
    build: impl Iterator<Item = (&'s S, f64)>,
    probe: impl Iterator<Item = (&'l L, f64)> + Clone,
    key_build: &KS,
    key_probe: &KL,
    mut emit_matches: impl FnMut(&K, &[(&'s S, f64)], &'l L, f64, f64),
) where
    S: 's,
    L: 'l,
    K: Clone + Eq + Hash,
    KS: Fn(&S) -> K + ?Sized,
    KL: Fn(&L) -> K + ?Sized,
{
    let mut parts: FxHashMap<K, Vec<(&S, f64)>> = FxHashMap::default();
    for (record, weight) in build {
        parts
            .entry(key_build(record))
            .or_default()
            .push((record, weight));
    }
    if parts.is_empty() {
        return;
    }
    // Pass 1 over the probe side: per-key weight multisets, only for keys the build side
    // can match (the probe side is never materialised record-by-record).
    let mut probe_weights: FxHashMap<K, Vec<f64>> = FxHashMap::default();
    for (record, weight) in probe.clone() {
        let key = key_probe(record);
        if parts.contains_key(&key) {
            probe_weights.entry(key).or_default().push(weight);
        }
    }
    let denominators: FxHashMap<K, f64> = probe_weights
        .into_iter()
        .filter_map(|(key, weights)| {
            let build_part = &parts[&key];
            let denominator = crate::accumulate::canonical_norm(build_part.iter().map(|(_, w)| *w))
                + crate::accumulate::canonical_norm(weights);
            (denominator > 0.0).then_some((key, denominator))
        })
        .collect();
    // Pass 2: hand each matching probe record its key's build part.
    for (record, weight) in probe {
        let key = key_probe(record);
        let Some(denominator) = denominators.get(&key) else {
            continue;
        };
        emit_matches(&key, &parts[&key], record, weight, *denominator);
    }
}

/// [`join`] with the identity result selector: emits `(a, b)` pairs.
pub fn join_pairs<A, B, K, KA, KB>(
    a: &WeightedDataset<A>,
    b: &WeightedDataset<B>,
    key_a: KA,
    key_b: KB,
) -> WeightedDataset<(A, B)>
where
    A: Record,
    B: Record,
    K: Clone + Eq + Hash,
    KA: Fn(&A) -> K,
    KB: Fn(&B) -> K,
{
    join(a, b, key_a, key_b, |ra, rb| (ra.clone(), rb.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operators::test_support::{sample_a, sample_b};
    use crate::weights::approx_eq;

    #[test]
    fn join_parity_example_from_paper() {
        // Section 2.7: joining A and B on parity. Note the paper's worked example lists
        // A₁ = {("1", 0.5), ("3", 1.0)} (a typo for 0.75 in the prose) and normalises by
        // ‖A₁‖ + ‖B₁‖ = 4.5; we follow the definition, so with A("1") = 0.75 the odd-key
        // norm is 0.75 + 1.0 + 3.0 = 4.75.
        let a = sample_a();
        let b = sample_b();
        let parity = |x: &&str| x.parse::<u32>().unwrap() % 2;
        let out = join_pairs(&a, &b, parity, parity);
        assert_eq!(out.len(), 3);
        // Even key: {"2"} × {"4"} / (2.0 + 2.0)
        assert!(approx_eq(out.weight(&("2", "4")), 2.0 * 2.0 / 4.0));
        // Odd key: {"1","3"} × {"1"} / (1.75 + 3.0)
        assert!(approx_eq(out.weight(&("1", "1")), 0.75 * 3.0 / 4.75));
        assert!(approx_eq(out.weight(&("3", "1")), 1.0 * 3.0 / 4.75));
    }

    #[test]
    fn join_with_exact_paper_inputs_matches_paper_numbers() {
        // Using the dataset exactly as printed in the worked example (A("1") = 0.5), the
        // outputs are {("⟨2,4⟩", 1.0), ("⟨1,1⟩", 0.33…), ("⟨3,1⟩", 0.66…)}.
        let a = WeightedDataset::from_pairs([("1", 0.5), ("2", 2.0), ("3", 1.0)]);
        let b = sample_b();
        let parity = |x: &&str| x.parse::<u32>().unwrap() % 2;
        let out = join_pairs(&a, &b, parity, parity);
        assert!(approx_eq(out.weight(&("2", "4")), 1.0));
        assert!(approx_eq(out.weight(&("1", "1")), 1.0 / 3.0));
        assert!(approx_eq(out.weight(&("3", "1")), 2.0 / 3.0));
    }

    #[test]
    fn keys_present_in_only_one_input_produce_nothing() {
        let a = WeightedDataset::from_pairs([(1u32, 1.0)]);
        let b = WeightedDataset::from_pairs([(2u32, 1.0)]);
        let out = join_pairs(&a, &b, |x| *x, |x| *x);
        assert!(out.is_empty());
    }

    #[test]
    fn self_join_on_length_two_paths_scales_by_degree() {
        // Section 2.7 "Join and paths": joining a symmetric edge set with itself on
        // dst = src yields paths (a, b, c) with weight 1/(2·d_b).
        let edges: Vec<(u32, u32)> = vec![(1, 2), (2, 1), (2, 3), (3, 2), (1, 3), (3, 1)];
        let edges = WeightedDataset::from_records(edges);
        let paths = join(&edges, &edges, |e| e.1, |e| e.0, |x, y| (x.0, x.1, y.1));
        // Node 2 has degree 2, so path (1, 2, 3) should have weight 1/(2·2) = 0.25.
        assert!(approx_eq(paths.weight(&(1, 2, 3)), 0.25));
        // Path (1, 2, 1) also exists (cycles are filtered later by the analyses).
        assert!(approx_eq(paths.weight(&(1, 2, 1)), 0.25));
    }

    #[test]
    fn result_selector_accumulates_collisions() {
        // Two distinct matches mapping to the same output record accumulate weight.
        let a = WeightedDataset::from_pairs([((1u32, 'x'), 1.0), ((1, 'y'), 1.0)]);
        let b = WeightedDataset::from_pairs([(1u32, 2.0)]);
        let out = join(&a, &b, |r| r.0, |r| *r, |_, rb| *rb);
        // ‖A₁‖ = 2, ‖B₁‖ = 2 → each match has weight 1·2/4 = 0.5, and both collapse onto
        // output record 1.
        assert!(approx_eq(out.weight(&1), 1.0));
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn unary_stability_on_specific_pair() {
        let a = sample_a();
        let b = sample_b();
        let mut a2 = a.clone();
        a2.add_weight("3", 1.0);
        a2.add_weight("5", 0.5);
        let parity = |x: &&str| x.parse::<u32>().unwrap() % 2;
        let d_in = a.distance(&a2);
        let out = join_pairs(&a, &b, parity, parity);
        let out2 = join_pairs(&a2, &b, parity, parity);
        assert!(out.distance(&out2) <= d_in + 1e-9);
    }

    #[test]
    fn output_norm_is_at_most_half_of_combined_input_norms() {
        // For any key, ‖A_k‖·‖B_k‖ / (‖A_k‖+‖B_k‖) ≤ min(‖A_k‖, ‖B_k‖) ≤ (‖A_k‖+‖B_k‖)/2.
        let a = sample_a();
        let b = sample_b();
        let parity = |x: &&str| x.parse::<u32>().unwrap() % 2;
        let out = join_pairs(&a, &b, parity, parity);
        assert!(out.norm() <= (a.norm() + b.norm()) / 2.0 + 1e-9);
    }
}
