//! Differentially-private aggregations.
//!
//! The paper's workhorse is `NoisyCount(A, ε)`, which returns `A(x) + Laplace(1/ε)` for
//! every record `x` in the *domain* of `A` — including records that do not appear in the
//! data. Because the domain of a weighted dataset may be unbounded, the implementation
//! materialises noisy weights only for records with non-zero weight, and lazily draws
//! (then memoises) fresh noise the first time an absent record is queried, exactly as
//! described in Section 2.2.

use std::collections::HashMap;
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::WeightedDataset;
use crate::noise::Laplace;
use crate::record::Record;

/// The result of a `NoisyCount` measurement: a dictionary of noisy record weights.
///
/// Weights for records absent from the measured dataset are generated on first access and
/// memoised so that repeated queries for the same record return the same value (otherwise
/// averaging repeated queries would wash the noise out and break the privacy guarantee).
#[derive(Debug)]
pub struct NoisyCounts<T: Record> {
    epsilon: f64,
    observed: HashMap<T, f64>,
    /// Lazily generated noise for records with zero true weight.
    absent: Mutex<HashMap<T, f64>>,
    /// RNG reserved for lazily generated noise.
    lazy_rng: Mutex<StdRng>,
}

impl<T: Record> NoisyCounts<T> {
    /// Measures `data` with `Laplace(1/epsilon)` noise per record.
    ///
    /// Noise is assigned in **sorted record order**, so for a fixed RNG state the released
    /// values are a function of the dataset's contents alone — independent of the hash-map
    /// insertion order the executor happened to produce. Together with the executors'
    /// bitwise-identical evaluation this makes whole releases reproducible across
    /// sequential and sharded execution.
    ///
    /// This constructor performs **no privacy accounting**; use the budgeted
    /// `Queryable::noisy_count` front end in the `wpinq` crate for real measurements.
    ///
    /// # Panics
    /// Panics if `epsilon` is not strictly positive and finite.
    pub fn measure<R: Rng + ?Sized>(data: &WeightedDataset<T>, epsilon: f64, rng: &mut R) -> Self {
        let laplace = Laplace::from_epsilon(epsilon);
        let observed = data
            .sorted_pairs()
            .into_iter()
            .map(|(record, weight)| (record, weight + laplace.sample(rng)))
            .collect();
        NoisyCounts {
            epsilon,
            observed,
            absent: Mutex::new(HashMap::new()),
            lazy_rng: Mutex::new(StdRng::seed_from_u64(rng.gen())),
        }
    }

    /// The privacy parameter this measurement was taken with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The noisy weight for `record`.
    ///
    /// Records absent from the measured dataset receive fresh `Laplace(1/ε)` noise on first
    /// access, which is memoised and reproduced on subsequent accesses.
    pub fn get(&self, record: &T) -> f64 {
        if let Some(v) = self.observed.get(record) {
            return *v;
        }
        let mut absent = self.absent.lock().expect("noise cache poisoned");
        if let Some(v) = absent.get(record) {
            return *v;
        }
        let laplace = Laplace::from_epsilon(self.epsilon);
        let noise = laplace.sample(&mut *self.lazy_rng.lock().expect("noise rng poisoned"));
        absent.insert(record.clone(), noise);
        noise
    }

    /// Iterates over the noisy counts of records that had non-zero true weight.
    ///
    /// Only these records were materialised eagerly; any other record can still be queried
    /// through [`get`](Self::get).
    pub fn iter_observed(&self) -> impl Iterator<Item = (&T, f64)> {
        self.observed.iter().map(|(r, w)| (r, *w))
    }

    /// Number of eagerly materialised (non-zero-weight) records.
    pub fn observed_len(&self) -> usize {
        self.observed.len()
    }

    /// Sum of the noisy weights over the observed records.
    pub fn observed_total(&self) -> f64 {
        self.observed.values().sum()
    }

    /// Observed noisy counts sorted by record, for deterministic reporting.
    pub fn sorted_observed(&self) -> Vec<(T, f64)> {
        let mut v: Vec<(T, f64)> = self.observed.iter().map(|(r, w)| (r.clone(), *w)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// The L1 distance `‖Q(A) − m‖₁` between a candidate dataset's query output and these
    /// noisy measurements, evaluated over the union of both supports.
    ///
    /// This is the quantity the MCMC scoring function of Section 4.2 uses. Records that
    /// appear in neither the candidate output nor the observed measurements contribute
    /// nothing (their lazily-drawn noise is not forced).
    pub fn l1_distance(&self, candidate: &WeightedDataset<T>) -> f64 {
        let mut total = 0.0;
        for (record, observed) in &self.observed {
            total += (candidate.weight(record) - observed).abs();
        }
        let absent = self.absent.lock().expect("noise cache poisoned");
        for (record, weight) in candidate.iter() {
            if !self.observed.contains_key(record) {
                let noise = absent.get(record).copied().unwrap_or(0.0);
                total += (weight - noise).abs();
            }
        }
        total
    }
}

/// A noisy sum of a numeric function of each record, clamped to `[-1, 1]` per unit weight.
///
/// `NoisySum(A, f, ε) = Σ_x clamp(f(x), -1, 1) · A(x) + Laplace(1/ε)`. Clamping keeps the
/// query 1-Lipschitz with respect to the dataset so a single unit of weight change moves
/// the true answer by at most one. The sum is accumulated in the canonical order of
/// [`crate::accumulate`], so the release is independent of dataset iteration order (and
/// therefore of the executor that produced the dataset).
pub fn noisy_sum<T, R, F>(data: &WeightedDataset<T>, f: F, epsilon: f64, rng: &mut R) -> f64
where
    T: Record,
    R: Rng + ?Sized,
    F: Fn(&T) -> f64,
{
    let laplace = Laplace::from_epsilon(epsilon);
    let mut terms: Vec<f64> = data
        .iter()
        .map(|(record, weight)| f(record).clamp(-1.0, 1.0) * weight)
        .collect();
    crate::accumulate::canonical_sum(&mut terms) + laplace.sample(rng)
}

/// A noisy average of a numeric function of each record, computed as a noisy sum divided by
/// a noisy total weight (each taking half the privacy budget).
pub fn noisy_average<T, R, F>(data: &WeightedDataset<T>, f: F, epsilon: f64, rng: &mut R) -> f64
where
    T: Record,
    R: Rng + ?Sized,
    F: Fn(&T) -> f64,
{
    let half = epsilon / 2.0;
    let laplace = Laplace::from_epsilon(half);
    let mut terms: Vec<f64> = data
        .iter()
        .map(|(record, weight)| f(record).clamp(-1.0, 1.0) * weight)
        .collect();
    let numerator = crate::accumulate::canonical_sum(&mut terms) + laplace.sample(rng);
    let denominator: f64 =
        crate::accumulate::canonical_norm(data.iter().map(|(_, w)| w)) + laplace.sample(rng);
    if denominator.abs() < 1e-9 {
        0.0
    } else {
        (numerator / denominator).clamp(-1.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_a() -> WeightedDataset<&'static str> {
        WeightedDataset::from_pairs([("1", 0.75), ("2", 2.0), ("3", 1.0)])
    }

    #[test]
    fn noise_assignment_is_independent_of_insertion_order() {
        // Two datasets with identical contents but different hash-map insertion orders
        // (as the sequential and sharded executors produce) must release identical
        // values for identical RNG state — noise is assigned in sorted record order.
        let pairs = [("d", 1.5), ("a", 0.25), ("c", -2.0), ("b", 7.0)];
        let forward = WeightedDataset::from_pairs(pairs);
        let reverse = WeightedDataset::from_pairs(pairs.iter().rev().copied());
        let m1 = NoisyCounts::measure(&forward, 0.5, &mut StdRng::seed_from_u64(3));
        let m2 = NoisyCounts::measure(&reverse, 0.5, &mut StdRng::seed_from_u64(3));
        for (record, value) in m1.sorted_observed() {
            assert_eq!(value.to_bits(), m2.get(&record).to_bits());
        }
        let s1 = noisy_sum(&forward, |_| 1.0, 0.5, &mut StdRng::seed_from_u64(4));
        let s2 = noisy_sum(&reverse, |_| 1.0, 0.5, &mut StdRng::seed_from_u64(4));
        assert_eq!(s1.to_bits(), s2.to_bits());
    }

    #[test]
    fn noisy_count_perturbs_every_observed_record() {
        let mut rng = StdRng::seed_from_u64(11);
        let counts = NoisyCounts::measure(&sample_a(), 0.1, &mut rng);
        assert_eq!(counts.observed_len(), 3);
        // With ε = 0.1 the noise has scale 10; values should differ from the truth but stay
        // in a plausible range.
        let v = counts.get(&"2");
        assert!(v.is_finite());
        assert!((v - 2.0).abs() < 200.0);
    }

    #[test]
    fn absent_records_get_memoised_noise() {
        let mut rng = StdRng::seed_from_u64(5);
        let counts = NoisyCounts::measure(&sample_a(), 1.0, &mut rng);
        let first = counts.get(&"0");
        let second = counts.get(&"0");
        assert_eq!(first, second, "lazy noise must be reproduced");
        assert_ne!(first, 0.0, "absent records must still be noised");
    }

    #[test]
    fn high_epsilon_measurements_are_accurate() {
        let mut rng = StdRng::seed_from_u64(19);
        let counts = NoisyCounts::measure(&sample_a(), 1000.0, &mut rng);
        assert!((counts.get(&"1") - 0.75).abs() < 0.1);
        assert!((counts.get(&"2") - 2.0).abs() < 0.1);
        assert!((counts.get(&"0") - 0.0).abs() < 0.1);
    }

    #[test]
    fn noise_distribution_matches_epsilon() {
        // Empirical check that NoisyCount noise has the Laplace(1/ε) spread.
        let mut rng = StdRng::seed_from_u64(23);
        let data: WeightedDataset<u32> = WeightedDataset::from_pairs((0..5000).map(|i| (i, 1.0)));
        let eps = 0.5;
        let counts = NoisyCounts::measure(&data, eps, &mut rng);
        let errs: Vec<f64> = (0..5000u32).map(|i| counts.get(&i) - 1.0).collect();
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        let var = errs.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / errs.len() as f64;
        assert!(mean.abs() < 0.2, "noise mean {mean} should be near 0");
        let expected_var = 2.0 / (eps * eps);
        assert!(
            (var - expected_var).abs() < expected_var * 0.2,
            "noise variance {var} should be near {expected_var}"
        );
    }

    #[test]
    fn l1_distance_is_zero_for_matching_candidate_without_noise_effects() {
        // With huge epsilon the measurement is essentially exact, so the true dataset is at
        // (nearly) zero distance and a perturbed one is farther away.
        let mut rng = StdRng::seed_from_u64(3);
        let truth = sample_a();
        let counts = NoisyCounts::measure(&truth, 1e6, &mut rng);
        let d_truth = counts.l1_distance(&truth);
        let mut other = truth.clone();
        other.add_weight("2", 1.0);
        let d_other = counts.l1_distance(&other);
        assert!(d_truth < 1e-3);
        assert!(d_other > 0.9);
    }

    #[test]
    fn l1_distance_counts_candidate_only_records() {
        let mut rng = StdRng::seed_from_u64(3);
        let counts = NoisyCounts::measure(&sample_a(), 1e6, &mut rng);
        let candidate = WeightedDataset::from_pairs([("zzz", 4.0)]);
        // "zzz" was never observed nor lazily forced, so it contributes |4 - 0|; the three
        // observed records contribute ≈ their true weights.
        let d = counts.l1_distance(&candidate);
        assert!((d - (4.0 + 3.75)).abs() < 1e-2, "distance was {d}");
    }

    #[test]
    fn noisy_sum_clamps_function_values() {
        let mut rng = StdRng::seed_from_u64(17);
        let data = WeightedDataset::from_pairs([(1u32, 1.0), (2, 1.0)]);
        // f returns 100, but clamping limits each record's contribution to 1.0 * weight.
        let v = noisy_sum(&data, |_| 100.0, 1e6, &mut rng);
        assert!((v - 2.0).abs() < 0.01, "clamped sum should be ~2, got {v}");
    }

    #[test]
    fn noisy_average_is_bounded() {
        let mut rng = StdRng::seed_from_u64(29);
        let data = WeightedDataset::from_pairs([(1u32, 1.0), (2, 3.0)]);
        let v = noisy_average(&data, |x| *x as f64, 1e6, &mut rng);
        assert!((-1.0..=1.0).contains(&v));
    }
}
