//! `colwire` — the compact columnar wire format for [`ColumnBatch`] segments.
//!
//! A frame is a versioned flat binary encoding of one batch: the record shape as a
//! recursive tag string, then every primitive leaf column as contiguous fixed-width
//! little-endian data, then the weights as raw `f64` bits. Column-contiguous layout means
//! a decoder reconstructs each `Vec` with one bulk pass per column instead of one branchy
//! shape walk per row, and an encoder never materializes a [`Value`] at all.
//!
//! The format is **exact**: weights travel as IEEE-754 bit patterns and integer leaves as
//! their in-memory width, so `decode_batch(encode_batch(b)) == b` bit-for-bit — which is
//! what lets the sharded exchange path and the service's `"encoding":"columnar"` response
//! mode ship frames without perturbing the release-bitwise-identity guarantees.
//!
//! ## Frame layout (version 1)
//!
//! Every frame is length-prefixed so frames can be concatenated on a stream:
//!
//! ```text
//! u32 LE   payload length (bytes after this prefix)
//! [u8; 4]  magic "WPQC"
//! u16 LE   COLWIRE_VERSION (= 1)
//! u16 LE   reserved (0)
//! type     recursive shape descriptor:
//!            0x00 Unit | 0x01 Bool | 0x02 U64 | 0x03 I64
//!            0x04 Tuple, then u16 LE field count, then each field's descriptor
//! u64 LE   row count
//! columns  shape preorder; per leaf:
//!            Unit → nothing, Bool → rows × u8 (0/1), U64/I64 → rows × u64 LE
//! weights  rows × u64 LE (f64::to_bits)
//! ```
//!
//! Any structural change to this layout requires bumping [`COLWIRE_VERSION`]; the golden
//! fixture test (`wpinq-core/tests` via the service round-trip suite) fails on silent
//! drift.

use crate::column::{ColumnBatch, ColumnData};
use crate::value::{Value, ValueType};

/// Frame magic, first bytes after the length prefix: `"WPQC"`.
pub const COLWIRE_MAGIC: [u8; 4] = *b"WPQC";

/// Version of the frame layout. Bump on any structural change and regenerate the golden
/// fixture.
pub const COLWIRE_VERSION: u16 = 1;

/// A malformed, truncated, or version-mismatched frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColwireError(String);

impl ColwireError {
    fn new(msg: impl Into<String>) -> ColwireError {
        ColwireError(msg.into())
    }
}

impl std::fmt::Display for ColwireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "colwire: {}", self.0)
    }
}

impl std::error::Error for ColwireError {}

const TAG_UNIT: u8 = 0x00;
const TAG_BOOL: u8 = 0x01;
const TAG_U64: u8 = 0x02;
const TAG_I64: u8 = 0x03;
const TAG_TUPLE: u8 = 0x04;

fn encode_ty(ty: &ValueType, out: &mut Vec<u8>) {
    match ty {
        ValueType::Unit => out.push(TAG_UNIT),
        ValueType::Bool => out.push(TAG_BOOL),
        ValueType::U64 => out.push(TAG_U64),
        ValueType::I64 => out.push(TAG_I64),
        ValueType::Tuple(items) => {
            out.push(TAG_TUPLE);
            let n = u16::try_from(items.len()).expect("tuple arity fits u16");
            out.extend_from_slice(&n.to_le_bytes());
            for item in items {
                encode_ty(item, out);
            }
        }
    }
}

fn encode_cols(cols: &ColumnData, rows: usize, out: &mut Vec<u8>) {
    match cols {
        ColumnData::Unit => {}
        ColumnData::Bool(col) => {
            debug_assert_eq!(col.len(), rows);
            out.extend(col.iter().map(|&b| b as u8));
        }
        ColumnData::U64(col) => {
            debug_assert_eq!(col.len(), rows);
            for v in col {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        ColumnData::I64(col) => {
            debug_assert_eq!(col.len(), rows);
            for v in col {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        ColumnData::Tuple(items) => {
            for item in items {
                encode_cols(item, rows, out);
            }
        }
    }
}

/// Encodes one batch as a single length-prefixed frame.
pub fn encode_batch(batch: &ColumnBatch) -> Vec<u8> {
    let rows = batch.len();
    let mut out = Vec::with_capacity(16 + 8 * rows * (1 + batch.ty().to_string().len() / 4));
    out.extend_from_slice(&[0u8; 4]); // length prefix, patched below
    out.extend_from_slice(&COLWIRE_MAGIC);
    out.extend_from_slice(&COLWIRE_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    encode_ty(batch.ty(), &mut out);
    out.extend_from_slice(&(rows as u64).to_le_bytes());
    encode_cols(batch.columns(), rows, &mut out);
    for w in batch.weights() {
        out.extend_from_slice(&w.to_bits().to_le_bytes());
    }
    let payload = u32::try_from(out.len() - 4).expect("frame payload fits u32");
    out[..4].copy_from_slice(&payload.to_le_bytes());
    out
}

/// A bounds-checked little-endian reader over a frame payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ColwireError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| ColwireError::new("truncated frame"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, ColwireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ColwireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ColwireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ColwireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn decode_ty(r: &mut Reader<'_>, depth: usize) -> Result<ValueType, ColwireError> {
    if depth > 64 {
        return Err(ColwireError::new("shape descriptor nests too deeply"));
    }
    match r.u8()? {
        TAG_UNIT => Ok(ValueType::Unit),
        TAG_BOOL => Ok(ValueType::Bool),
        TAG_U64 => Ok(ValueType::U64),
        TAG_I64 => Ok(ValueType::I64),
        TAG_TUPLE => {
            let n = r.u16()? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(decode_ty(r, depth + 1)?);
            }
            Ok(ValueType::Tuple(items))
        }
        tag => Err(ColwireError::new(format!("unknown shape tag {tag:#04x}"))),
    }
}

fn decode_cols(
    ty: &ValueType,
    rows: usize,
    r: &mut Reader<'_>,
) -> Result<ColumnData, ColwireError> {
    match ty {
        ValueType::Unit => Ok(ColumnData::Unit),
        ValueType::Bool => {
            let raw = r.take(rows)?;
            let mut col = Vec::with_capacity(rows);
            for &b in raw {
                match b {
                    0 => col.push(false),
                    1 => col.push(true),
                    other => {
                        return Err(ColwireError::new(format!("invalid bool byte {other:#04x}")))
                    }
                }
            }
            Ok(ColumnData::Bool(col))
        }
        ValueType::U64 => {
            let raw = r.take(rows * 8)?;
            Ok(ColumnData::U64(
                raw.chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ))
        }
        ValueType::I64 => {
            let raw = r.take(rows * 8)?;
            Ok(ColumnData::I64(
                raw.chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            ))
        }
        ValueType::Tuple(items) => {
            let mut cols = Vec::with_capacity(items.len());
            for item in items {
                cols.push(decode_cols(item, rows, r)?);
            }
            Ok(ColumnData::Tuple(cols))
        }
    }
}

/// Decodes one length-prefixed frame back to a batch — the exact inverse of
/// [`encode_batch`]. Trailing bytes after the frame are rejected.
pub fn decode_batch(bytes: &[u8]) -> Result<ColumnBatch, ColwireError> {
    let mut r = Reader { bytes, pos: 0 };
    let payload = r.u32()? as usize;
    if bytes.len() - 4 != payload {
        return Err(ColwireError::new(format!(
            "length prefix {payload} does not match payload size {}",
            bytes.len() - 4
        )));
    }
    if r.take(4)? != COLWIRE_MAGIC {
        return Err(ColwireError::new("bad magic"));
    }
    let version = r.u16()?;
    if version != COLWIRE_VERSION {
        return Err(ColwireError::new(format!(
            "unsupported frame version {version} (this build speaks {COLWIRE_VERSION})"
        )));
    }
    if r.u16()? != 0 {
        return Err(ColwireError::new("nonzero reserved field"));
    }
    let ty = decode_ty(&mut r, 0)?;
    let rows_u64 = r.u64()?;
    let rows = usize::try_from(rows_u64)
        .ok()
        .filter(|&rows| rows <= bytes.len())
        .ok_or_else(|| ColwireError::new(format!("implausible row count {rows_u64}")))?;
    let columns = decode_cols(&ty, rows, &mut r)?;
    let raw = r.take(rows * 8)?;
    let weights: Vec<f64> = raw
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
        .collect();
    if r.pos != bytes.len() {
        return Err(ColwireError::new("trailing bytes after frame"));
    }
    ColumnBatch::from_parts(columns, weights)
        .ok_or_else(|| ColwireError::new("inconsistent column lengths"))
}

/// Encodes weighted rows as one frame, inferring the shape from the first record.
/// `None` when the rows are empty (no shape to infer) or shape-inconsistent — the caller
/// keeps its row representation.
pub fn encode_rows(rows: &[(Value, f64)]) -> Option<Vec<u8>> {
    let ty = rows.first()?.0.type_of();
    let batch = ColumnBatch::from_pairs(ty, rows.iter().map(|(v, w)| (v, *w)))?;
    Some(encode_batch(&batch))
}

/// Decodes a frame to weighted rows in frame order — the inverse of [`encode_rows`].
pub fn decode_rows(bytes: &[u8]) -> Result<Vec<(Value, f64)>, ColwireError> {
    Ok(decode_batch(bytes)?.to_pairs())
}

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard (RFC 4648, padded) base64 of a frame, for embedding in JSON envelopes.
pub fn to_base64(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let word = (b0 << 16) | (b1 << 8) | b2;
        out.push(BASE64_ALPHABET[(word >> 18) as usize & 63] as char);
        out.push(BASE64_ALPHABET[(word >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            BASE64_ALPHABET[(word >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            BASE64_ALPHABET[word as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Inverse of [`to_base64`]; rejects non-alphabet characters and ragged lengths.
pub fn from_base64(text: &str) -> Result<Vec<u8>, ColwireError> {
    fn value_of(c: u8) -> Result<u32, ColwireError> {
        match c {
            b'A'..=b'Z' => Ok((c - b'A') as u32),
            b'a'..=b'z' => Ok((c - b'a' + 26) as u32),
            b'0'..=b'9' => Ok((c - b'0' + 52) as u32),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(ColwireError::new(format!(
                "invalid base64 character {:?}",
                c as char
            ))),
        }
    }
    let raw = text.as_bytes();
    if !raw.len().is_multiple_of(4) {
        return Err(ColwireError::new("base64 length not a multiple of 4"));
    }
    let mut out = Vec::with_capacity(raw.len() / 4 * 3);
    for quad in raw.chunks_exact(4) {
        let pad = quad.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || quad[..4 - pad].contains(&b'=') {
            return Err(ColwireError::new("malformed base64 padding"));
        }
        let mut word = 0u32;
        for &c in &quad[..4 - pad] {
            word = (word << 6) | value_of(c)?;
        }
        word <<= 6 * pad;
        out.push((word >> 16) as u8);
        if pad < 2 {
            out.push((word >> 8) as u8);
        }
        if pad < 1 {
            out.push(word as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> ColumnBatch {
        let rows = [
            (
                Value::Tuple(vec![
                    Value::U64(3),
                    Value::I64(-7),
                    Value::Bool(true),
                    Value::Unit,
                ]),
                1.25,
            ),
            (
                Value::Tuple(vec![
                    Value::U64(u64::MAX),
                    Value::I64(i64::MIN),
                    Value::Bool(false),
                    Value::Unit,
                ]),
                -0.5f64.sqrt() * -1.0,
            ),
            (
                Value::Tuple(vec![
                    Value::U64(0),
                    Value::I64(0),
                    Value::Bool(true),
                    Value::Unit,
                ]),
                3.0f64.sqrt(),
            ),
        ];
        let ty = rows[0].0.type_of();
        ColumnBatch::from_pairs(ty, rows.iter().map(|(v, w)| (v, *w))).unwrap()
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let batch = sample_batch();
        let frame = encode_batch(&batch);
        let back = decode_batch(&frame).unwrap();
        assert_eq!(back.ty(), batch.ty());
        assert_eq!(back.columns(), batch.columns());
        let (w0, w1) = (batch.weights(), back.weights());
        assert_eq!(w0.len(), w1.len());
        for (a, b) in w0.iter().zip(w1) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rows_round_trip_preserves_order_and_bits() {
        let rows = vec![
            (Value::U64(9), f64::NAN),
            (Value::U64(2), -0.0),
            (Value::U64(9), 1.0 / 3.0),
        ];
        let frame = encode_rows(&rows).unwrap();
        let back = decode_rows(&frame).unwrap();
        assert_eq!(back.len(), rows.len());
        for ((v0, w0), (v1, w1)) in rows.iter().zip(&back) {
            assert_eq!(v0, v1);
            assert_eq!(w0.to_bits(), w1.to_bits());
        }
    }

    #[test]
    fn empty_and_inconsistent_rows_are_refused() {
        assert!(encode_rows(&[]).is_none());
        assert!(encode_rows(&[(Value::U64(1), 1.0), (Value::Bool(true), 1.0)]).is_none());
    }

    #[test]
    fn unit_only_batches_carry_pure_length() {
        let batch =
            ColumnBatch::from_pairs(ValueType::Unit, [(&Value::Unit, 2.0), (&Value::Unit, 4.0)])
                .unwrap();
        let frame = encode_batch(&batch);
        let back = decode_batch(&frame).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.columns(), &ColumnData::Unit);
    }

    #[test]
    fn corrupt_frames_are_rejected_not_misread() {
        let frame = encode_batch(&sample_batch());
        assert!(decode_batch(&frame[..frame.len() - 1]).is_err());
        let mut bad_magic = frame.clone();
        bad_magic[4] = b'X';
        assert!(decode_batch(&bad_magic).is_err());
        let mut bad_version = frame.clone();
        bad_version[8] = 0xFF;
        assert!(decode_batch(&bad_version).is_err());
        let mut extra = frame.clone();
        extra.push(0);
        assert!(decode_batch(&extra).is_err());
    }

    #[test]
    fn base64_round_trips_and_rejects_garbage() {
        for len in 0..32 {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let text = to_base64(&bytes);
            assert_eq!(from_base64(&text).unwrap(), bytes);
        }
        assert!(from_base64("###!").is_err());
        assert!(from_base64("AAA").is_err());
        assert!(from_base64("=AAA").is_err());
    }
}
