//! Hash-sharded datasets and shard-parallel batch kernels.
//!
//! [`ShardedDataset<T>`] splits a [`WeightedDataset`] into `n` shards by a stable hash of
//! the record, with the invariant that **every record lives in the shard
//! `shard_of(record, n)` with its full, exactly-accumulated weight**. Each operator here
//! mirrors one sequential kernel in [`crate::operators`], evaluating shard-wise on
//! `std::thread::scope` workers and *exchanging* (re-routing) records only where the
//! operator requires it:
//!
//! * `Where` preserves record identity, so it runs shard-local with no exchange.
//! * The element-wise binary operators (`Union`, `Intersect`, `Concat`, `Except`) consume
//!   two datasets co-partitioned by the same record hash, so they also run shard-local.
//! * `Select`, `SelectMany` and `Shave` change the record, so their outputs are routed to
//!   the output record's shard.
//! * `GroupBy` and `Join` are the true exchange boundaries: inputs are first re-routed by
//!   *key* hash so each worker sees every record of its keys, then outputs are routed by
//!   output-record hash.
//!
//! Where contributions from different shards can collide on one output record (`Select`,
//! `SelectMany`, `Join`), they are resolved through the canonical accumulation order of
//! [`crate::accumulate`], and the sequential kernels use the same canonicalisation — so a
//! sharded evaluation is **bitwise identical** to a sequential one, for every shard count.
//! This is checked operator-by-operator by the tests below and end-to-end by the plan
//! property tests in the `wpinq` crate.

use std::hash::{Hash, Hasher};

use rustc_hash::FxHasher;

use crate::accumulate::Contributions;
use crate::dataset::WeightedDataset;
use crate::operators as batch;
use crate::record::Record;

/// The shard index of a value under a stable (seedless) hash.
///
/// Uses the deterministic `FxHasher`, so the assignment is reproducible across runs,
/// threads and machines of the same endianness/width.
pub fn shard_of<T: Hash + ?Sized>(value: &T, nshards: usize) -> usize {
    debug_assert!(nshards > 0, "shard_of requires at least one shard");
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    (hasher.finish() % nshards as u64) as usize
}

/// A weighted dataset hash-partitioned into `n` record-disjoint shards.
///
/// Invariant: record `r` appears only in shard [`shard_of`]`(r, n)`, carrying the same
/// weight it would carry in the unsharded dataset. [`merged`](Self::merged) is therefore a
/// lossless inverse of [`partition`](Self::partition).
#[derive(Debug, Clone)]
pub struct ShardedDataset<T: Record> {
    shards: Vec<WeightedDataset<T>>,
}

impl<T: Record> ShardedDataset<T> {
    /// Partitions a dataset into `nshards` (clamped to at least 1) record-hash shards.
    pub fn partition(data: &WeightedDataset<T>, nshards: usize) -> Self {
        let n = nshards.max(1);
        let mut shards = vec![WeightedDataset::new(); n];
        for (record, weight) in data.iter() {
            shards[shard_of(record, n)].set_weight(record.clone(), weight);
        }
        ShardedDataset { shards }
    }

    fn from_shards(shards: Vec<WeightedDataset<T>>) -> Self {
        debug_assert!(!shards.is_empty());
        ShardedDataset { shards }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, indexed by [`shard_of`].
    pub fn shards(&self) -> &[WeightedDataset<T>] {
        &self.shards
    }

    /// Total number of records across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(WeightedDataset::len).sum()
    }

    /// Returns `true` when no shard holds any record.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(WeightedDataset::is_empty)
    }

    /// Reassembles the single-map dataset (shards are record-disjoint, so no weight
    /// arithmetic happens here — weights are moved bit-for-bit).
    pub fn merged(&self) -> WeightedDataset<T> {
        let mut out = WeightedDataset::with_capacity(self.len());
        for shard in &self.shards {
            for (record, weight) in shard.iter() {
                out.set_weight(record.clone(), weight);
            }
        }
        out
    }

    /// [`merged`](Self::merged), consuming the shards to avoid cloning records.
    pub fn into_merged(self) -> WeightedDataset<T> {
        let mut out = WeightedDataset::with_capacity(self.len());
        for shard in self.shards {
            for (record, weight) in shard {
                out.set_weight(record, weight);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------------------
// Worker scaffolding
// ---------------------------------------------------------------------------------------

/// Runs `f(shard_index, input)` for every input on scoped worker threads, returning the
/// results in shard order. Single-shard calls run inline to skip the spawn cost.
///
/// Public because the sharded *incremental* engine in `wpinq-dataflow` drives its
/// per-operator delta kernels through the same worker scaffolding.
pub fn map_shards<I: Send, R: Send>(inputs: Vec<I>, f: impl Fn(usize, I) -> R + Sync) -> Vec<R> {
    if inputs.len() == 1 {
        let input = inputs.into_iter().next().expect("one input");
        return vec![f(0, input)];
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = inputs
            .into_iter()
            .enumerate()
            .map(|(index, input)| scope.spawn(move || f(index, input)))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("shard worker panicked"))
            .collect()
    })
}

/// Runs `f(shard_index)` for `0..n` on scoped worker threads.
pub fn for_each_shard<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    map_shards((0..n).collect::<Vec<_>>(), |_, index| f(index))
}

/// Routing buffers produced by one worker: one `(record, weight)` bucket per destination.
type Routed<T> = Vec<Vec<(T, f64)>>;

fn empty_routes<T>(n: usize) -> Routed<T> {
    (0..n).map(|_| Vec::new()).collect()
}

/// Transposes per-producer routing buffers and canonically accumulates each destination
/// shard in parallel. Collisions between contributions (same output record reached from
/// several producers, or several times from one) are resolved in canonical order.
fn exchange<U: Record>(routed: Vec<Routed<U>>) -> ShardedDataset<U> {
    let n = routed.first().map(Vec::len).expect("at least one producer");
    let mut by_dest: Vec<Vec<Vec<(U, f64)>>> = (0..n).map(|_| Vec::new()).collect();
    for producer in routed {
        debug_assert_eq!(producer.len(), n);
        for (dest, bucket) in producer.into_iter().enumerate() {
            by_dest[dest].push(bucket);
        }
    }
    let shards = map_shards(by_dest, |_, buckets| {
        let mut acc = Contributions::new();
        for bucket in buckets {
            for (record, weight) in bucket {
                acc.push(record, weight);
            }
        }
        acc.into_dataset()
    });
    ShardedDataset::from_shards(shards)
}

/// Routes a locally-computed dataset to destination buckets by output-record hash.
fn route_dataset<U: Record>(data: WeightedDataset<U>, n: usize) -> Routed<U> {
    let mut routes = empty_routes(n);
    for (record, weight) in data {
        routes[shard_of(&record, n)].push((record, weight));
    }
    routes
}

// ---------------------------------------------------------------------------------------
// Sharded operator kernels
// ---------------------------------------------------------------------------------------

/// Shard-parallel `Select` (see [`batch::select`]).
pub fn select<T, U, F>(data: &ShardedDataset<T>, f: &F) -> ShardedDataset<U>
where
    T: Record,
    U: Record,
    F: Fn(&T) -> U + Sync + ?Sized,
{
    let n = data.num_shards();
    let routed = for_each_shard(n, |index| {
        let mut routes = empty_routes(n);
        for (record, weight) in data.shards[index].iter() {
            let out = f(record);
            routes[shard_of(&out, n)].push((out, weight));
        }
        routes
    });
    exchange(routed)
}

/// Shard-parallel `Where` (see [`batch::filter`]); record identity is preserved, so the
/// partitioning survives and no exchange happens.
pub fn filter<T, P>(data: &ShardedDataset<T>, predicate: &P) -> ShardedDataset<T>
where
    T: Record,
    P: Fn(&T) -> bool + Sync + ?Sized,
{
    let shards = for_each_shard(data.num_shards(), |index| {
        batch::filter(&data.shards[index], predicate)
    });
    ShardedDataset::from_shards(shards)
}

/// Shard-parallel `SelectMany` (see [`batch::select_many`]).
pub fn select_many<T, U, F>(data: &ShardedDataset<T>, f: &F) -> ShardedDataset<U>
where
    T: Record,
    U: Record,
    F: Fn(&T) -> WeightedDataset<U> + Sync + ?Sized,
{
    let n = data.num_shards();
    let routed = for_each_shard(n, |index| {
        let mut routes = empty_routes(n);
        for (record, weight) in data.shards[index].iter() {
            let produced = f(record);
            let norm = produced.norm();
            if norm == 0.0 {
                continue;
            }
            let scale = weight / norm.max(1.0);
            for (out, w) in produced.iter() {
                routes[shard_of(out, n)].push((out.clone(), w * scale));
            }
        }
        routes
    });
    exchange(routed)
}

/// Shard-parallel `Shave` (see [`batch::shave`]). Outputs `(record, index)` are unique per
/// input record, so the exchange only re-routes — no cross-shard collisions exist.
pub fn shave<T, F, I>(data: &ShardedDataset<T>, schedule: &F) -> ShardedDataset<(T, u64)>
where
    T: Record,
    F: Fn(&T) -> I + Sync + ?Sized,
    I: IntoIterator<Item = f64>,
{
    let n = data.num_shards();
    let routed = for_each_shard(n, |index| {
        route_dataset(batch::shave(&data.shards[index], schedule), n)
    });
    exchange(routed)
}

/// Shard-parallel `GroupBy` (see [`batch::group_by`]): records are exchanged by **key**
/// hash so each worker owns complete groups, then each worker runs the sequential kernel
/// (whose within-group order is already canonical) and routes its outputs.
pub fn group_by<T, K, R, KF, RF>(
    data: &ShardedDataset<T>,
    key: &KF,
    reduce: &RF,
) -> ShardedDataset<(K, R)>
where
    T: Record,
    K: Record,
    R: Record,
    KF: Fn(&T) -> K + Sync + ?Sized,
    RF: Fn(&[T]) -> R + Sync + ?Sized,
{
    let n = data.num_shards();
    // Exchange inputs by key hash (each record moves with its exact weight; records are
    // globally unique, so no accumulation happens).
    let routed = for_each_shard(n, |index| {
        let mut routes = empty_routes(n);
        for (record, weight) in data.shards[index].iter() {
            routes[shard_of(&key(record), n)].push((record.clone(), weight));
        }
        routes
    });
    let mut by_dest: Vec<Vec<(T, f64)>> = (0..n).map(|_| Vec::new()).collect();
    for producer in routed {
        for (dest, bucket) in producer.into_iter().enumerate() {
            by_dest[dest].extend(bucket);
        }
    }
    // Each worker reduces its complete key groups, then routes outputs by record hash.
    let produced = map_shards(by_dest, |_, records| {
        let part = WeightedDataset::from_pairs(records);
        route_dataset(batch::group_by(&part, key, reduce), n)
    });
    exchange(produced)
}

/// Shard-parallel weight-rescaling `Join` (see [`batch::join`]): both inputs are exchanged
/// by key hash, each worker joins its complete key groups with canonically-ordered
/// normalising denominators, and the output contributions are exchanged by record hash.
pub fn join<A, B, K, R, KA, KB, RF>(
    a: &ShardedDataset<A>,
    b: &ShardedDataset<B>,
    key_a: &KA,
    key_b: &KB,
    result: &RF,
) -> ShardedDataset<R>
where
    A: Record,
    B: Record,
    K: Clone + Eq + Hash,
    R: Record,
    KA: Fn(&A) -> K + Sync + ?Sized,
    KB: Fn(&B) -> K + Sync + ?Sized,
    RF: Fn(&A, &B) -> R + Sync + ?Sized,
{
    let n = a.num_shards();
    assert_eq!(
        n,
        b.num_shards(),
        "join requires co-sharded inputs (same shard count)"
    );

    fn route_by_key<T: Record, K, KF>(
        data: &ShardedDataset<T>,
        key: &KF,
        n: usize,
    ) -> Vec<Vec<(T, f64)>>
    where
        KF: Fn(&T) -> K + Sync + ?Sized,
        K: Hash,
    {
        let routed = for_each_shard(n, |index| {
            let mut routes = empty_routes(n);
            for (record, weight) in data.shards[index].iter() {
                routes[shard_of(&key(record), n)].push((record.clone(), weight));
            }
            routes
        });
        let mut by_dest: Vec<Vec<(T, f64)>> = (0..n).map(|_| Vec::new()).collect();
        for producer in routed {
            for (dest, bucket) in producer.into_iter().enumerate() {
                by_dest[dest].extend(bucket);
            }
        }
        by_dest
    }

    let a_by_key = route_by_key(a, key_a, n);
    let b_by_key = route_by_key(b, key_b, n);

    let produced = map_shards(
        a_by_key.into_iter().zip(b_by_key).collect::<Vec<_>>(),
        |_, (recs_a, recs_b)| {
            // Each worker owns complete key groups; the asymmetric build-small/probe-large
            // core (shared with the batch kernel) emits bitwise-identical contributions
            // whichever side is indexed, so the per-worker choice is purely a cost call.
            // Matching the sequential kernel's two-level accumulation, contributions are
            // resolved per key *before* routing; the exchange then canonically sums the
            // per-key totals of records matched under keys on different workers.
            use rustc_hash::FxHashMap;
            let mut per_key: FxHashMap<K, Contributions<R>> = FxHashMap::default();
            if recs_a.len() <= recs_b.len() {
                batch::join_build_probe(
                    recs_a.iter().map(|(r, w)| (r, *w)),
                    recs_b.iter().map(|(r, w)| (r, *w)),
                    key_a,
                    key_b,
                    |key, part, rb, w_probe, denominator| {
                        let acc = batch::key_accumulator(&mut per_key, key);
                        for (ra, w_build) in part {
                            acc.push(result(ra, rb), w_build * w_probe / denominator);
                        }
                    },
                );
            } else {
                batch::join_build_probe(
                    recs_b.iter().map(|(r, w)| (r, *w)),
                    recs_a.iter().map(|(r, w)| (r, *w)),
                    key_b,
                    key_a,
                    |key, part, ra, w_probe, denominator| {
                        let acc = batch::key_accumulator(&mut per_key, key);
                        for (rb, w_build) in part {
                            acc.push(result(ra, rb), w_build * w_probe / denominator);
                        }
                    },
                );
            }
            let mut routes = empty_routes(n);
            for (_, contributions) in per_key {
                for (record, total) in contributions.into_dataset() {
                    routes[shard_of(&record, n)].push((record, total));
                }
            }
            routes
        },
    );
    exchange(produced)
}

/// Shard-parallel element-wise `Union` (co-sharded inputs, shard-local, no exchange).
pub fn union<T: Record>(a: &ShardedDataset<T>, b: &ShardedDataset<T>) -> ShardedDataset<T> {
    binary(a, b, batch::union)
}

/// Shard-parallel element-wise `Intersect` (co-sharded inputs, shard-local, no exchange).
pub fn intersect<T: Record>(a: &ShardedDataset<T>, b: &ShardedDataset<T>) -> ShardedDataset<T> {
    binary(a, b, batch::intersect)
}

/// Shard-parallel element-wise `Concat` (co-sharded inputs, shard-local, no exchange).
pub fn concat<T: Record>(a: &ShardedDataset<T>, b: &ShardedDataset<T>) -> ShardedDataset<T> {
    binary(a, b, batch::concat)
}

/// Shard-parallel element-wise `Except` (co-sharded inputs, shard-local, no exchange).
pub fn except<T: Record>(a: &ShardedDataset<T>, b: &ShardedDataset<T>) -> ShardedDataset<T> {
    binary(a, b, batch::except)
}

fn binary<T: Record>(
    a: &ShardedDataset<T>,
    b: &ShardedDataset<T>,
    op: impl Fn(&WeightedDataset<T>, &WeightedDataset<T>) -> WeightedDataset<T> + Sync,
) -> ShardedDataset<T> {
    assert_eq!(
        a.num_shards(),
        b.num_shards(),
        "element-wise operators require co-sharded inputs (same shard count)"
    );
    let shards = for_each_shard(a.num_shards(), |index| {
        op(&a.shards[index], &b.shards[index])
    });
    ShardedDataset::from_shards(shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WeightedDataset<(u32, u32)> {
        WeightedDataset::from_pairs(
            (0u32..40)
                .flat_map(|i| (0u32..(i % 7)).map(move |j| ((i, j), 0.25 + (i + j) as f64 * 0.5))),
        )
    }

    fn assert_bitwise_eq<T: Record>(sharded: &ShardedDataset<T>, sequential: &WeightedDataset<T>) {
        let merged = sharded.merged();
        assert_eq!(merged.len(), sequential.len(), "record sets differ");
        for (record, weight) in sequential.iter() {
            assert_eq!(
                weight.to_bits(),
                merged.weight(record).to_bits(),
                "weight of {record:?} differs bitwise"
            );
        }
    }

    #[test]
    fn partition_and_merge_round_trip_exactly() {
        let data = sample();
        for n in [1, 2, 3, 8] {
            let sharded = ShardedDataset::partition(&data, n);
            assert_eq!(sharded.num_shards(), n);
            assert_eq!(sharded.len(), data.len());
            assert_bitwise_eq(&sharded, &data);
            // Every record sits in its hash shard.
            for (index, shard) in sharded.shards().iter().enumerate() {
                for (record, _) in shard.iter() {
                    assert_eq!(shard_of(record, n), index);
                }
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let sharded = ShardedDataset::partition(&sample(), 0);
        assert_eq!(sharded.num_shards(), 1);
    }

    #[test]
    fn select_matches_sequential_bitwise() {
        let data = sample();
        // Deliberately collapse many records onto few outputs to force collisions.
        let f = |r: &(u32, u32)| r.0 % 5;
        let sequential = batch::select(&data, f);
        for n in [1, 2, 8] {
            let sharded = select(&ShardedDataset::partition(&data, n), &f);
            assert_bitwise_eq(&sharded, &sequential);
        }
    }

    #[test]
    fn filter_matches_sequential_bitwise() {
        let data = sample();
        let p = |r: &(u32, u32)| !(r.0 + r.1).is_multiple_of(3);
        let sequential = batch::filter(&data, p);
        for n in [1, 2, 8] {
            let sharded = filter(&ShardedDataset::partition(&data, n), &p);
            assert_bitwise_eq(&sharded, &sequential);
        }
    }

    #[test]
    fn select_many_matches_sequential_bitwise() {
        let data = sample();
        let f =
            |r: &(u32, u32)| WeightedDataset::from_records((0..(r.0 % 4)).map(|k| (r.0 + k) % 9));
        let sequential = batch::select_many(&data, f);
        for n in [1, 2, 8] {
            let sharded = select_many(&ShardedDataset::partition(&data, n), &f);
            assert_bitwise_eq(&sharded, &sequential);
        }
    }

    #[test]
    fn shave_matches_sequential_bitwise() {
        let data = sample();
        let schedule = |_: &(u32, u32)| std::iter::repeat(0.4);
        let sequential = batch::shave(&data, schedule);
        for n in [1, 2, 8] {
            let sharded = shave(&ShardedDataset::partition(&data, n), &schedule);
            assert_bitwise_eq(&sharded, &sequential);
        }
    }

    #[test]
    fn group_by_matches_sequential_bitwise() {
        let data = sample();
        let key = |r: &(u32, u32)| r.0 % 6;
        let reduce = |group: &[(u32, u32)]| group.len() as u64;
        let sequential = batch::group_by(&data, key, reduce);
        for n in [1, 2, 8] {
            let sharded = group_by(&ShardedDataset::partition(&data, n), &key, &reduce);
            assert_bitwise_eq(&sharded, &sequential);
        }
    }

    #[test]
    fn join_matches_sequential_bitwise() {
        let data = sample();
        let ka = |r: &(u32, u32)| r.0 % 8;
        let kb = |r: &(u32, u32)| (r.0 + r.1) % 8;
        // Collapse outputs so contributions collide across keys.
        let res = |x: &(u32, u32), y: &(u32, u32)| (x.1 % 3, y.1 % 3);
        let sequential = batch::join(&data, &data, ka, kb, res);
        for n in [1, 2, 8] {
            let sharded_data = ShardedDataset::partition(&data, n);
            let sharded = join(&sharded_data, &sharded_data, &ka, &kb, &res);
            assert_bitwise_eq(&sharded, &sequential);
        }
    }

    #[test]
    fn set_operators_match_sequential_bitwise() {
        let a = sample();
        let b = batch::select(&a, |r: &(u32, u32)| ((r.0 + 1) % 13, r.1));
        for n in [1, 2, 8] {
            let sa = ShardedDataset::partition(&a, n);
            let sb = ShardedDataset::partition(&b, n);
            assert_bitwise_eq(&union(&sa, &sb), &batch::union(&a, &b));
            assert_bitwise_eq(&intersect(&sa, &sb), &batch::intersect(&a, &b));
            assert_bitwise_eq(&concat(&sa, &sb), &batch::concat(&a, &b));
            assert_bitwise_eq(&except(&sa, &sb), &batch::except(&a, &b));
        }
    }
}
