//! Hash-sharded datasets and shard-parallel batch kernels.
//!
//! [`ShardedDataset<T>`] splits a [`WeightedDataset`] into `n` shards by a stable hash of
//! the record, with the invariant that **every record lives in the shard
//! `shard_of(record, n)` with its full, exactly-accumulated weight**. Each operator here
//! mirrors one sequential kernel in [`crate::operators`], evaluating shard-wise on worker
//! threads and *exchanging* (re-routing) records only where the operator requires it:
//!
//! * `Where` preserves record identity, so it runs shard-local with no exchange.
//! * The element-wise binary operators (`Union`, `Intersect`, `Concat`, `Except`) consume
//!   two datasets co-partitioned by the same record hash, so they also run shard-local.
//! * `Select`, `SelectMany` and `Shave` change the record, so their outputs are routed to
//!   the output record's shard.
//! * `GroupBy` and `Join` are the true exchange boundaries: inputs are first re-routed by
//!   *key* hash so each worker sees every record of its keys, then outputs are routed by
//!   output-record hash.
//!
//! Two worker strategies exist behind the same `map_shards`-shaped API, selected by
//! [`ShardRunner`]:
//!
//! * **Scoped** ([`map_shards`]) spawns fresh `std::thread::scope` workers per call — the
//!   original strategy, kept as the reference implementation.
//! * **Pooled** ([`WorkerPool`]) keeps N long-lived workers, each owning its shard index,
//!   fed lifetime-erased closures over `std::sync::mpsc` channels with results returned on
//!   per-call reply channels. Steady-state dispatch spawns **zero** threads, which is what
//!   makes sharding profitable for the tiny delta batches of the MCMC walk.
//!
//! Both strategies run the identical per-shard computation in the identical shard order,
//! so outputs are bitwise interchangeable. Where contributions from different shards can
//! collide on one output record (`Select`, `SelectMany`, `Join`), they are resolved
//! through the canonical accumulation order of [`crate::accumulate`], and the sequential
//! kernels use the same canonicalisation — so a sharded evaluation is **bitwise
//! identical** to a sequential one, for every shard count and either runner. This is
//! checked operator-by-operator by the tests below and end-to-end by the plan property
//! tests in the `wpinq` crate.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Mutex, OnceLock};

use wpinq_telemetry::{registry, Counter};

use rustc_hash::FxHasher;

use crate::accumulate::Contributions;
use crate::dataset::WeightedDataset;
use crate::operators as batch;
use crate::record::Record;

/// The shard index of a value under a stable (seedless) hash.
///
/// Uses the deterministic `FxHasher`, so the assignment is reproducible across runs,
/// threads and machines of the same endianness/width.
pub fn shard_of<T: Hash + ?Sized>(value: &T, nshards: usize) -> usize {
    debug_assert!(nshards > 0, "shard_of requires at least one shard");
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    (hasher.finish() % nshards as u64) as usize
}

/// A weighted dataset hash-partitioned into `n` record-disjoint shards.
///
/// Invariant: record `r` appears only in shard [`shard_of`]`(r, n)`, carrying the same
/// weight it would carry in the unsharded dataset. [`merged`](Self::merged) is therefore a
/// lossless inverse of [`partition`](Self::partition).
#[derive(Debug, Clone)]
pub struct ShardedDataset<T: Record> {
    shards: Vec<WeightedDataset<T>>,
}

impl<T: Record> ShardedDataset<T> {
    /// Partitions a dataset into `nshards` (clamped to at least 1) record-hash shards.
    pub fn partition(data: &WeightedDataset<T>, nshards: usize) -> Self {
        let n = nshards.max(1);
        let mut shards = vec![WeightedDataset::new(); n];
        for (record, weight) in data.iter() {
            shards[shard_of(record, n)].set_weight(record.clone(), weight);
        }
        ShardedDataset { shards }
    }

    /// Assembles a sharded dataset from already-partitioned shards.
    ///
    /// The caller owns the type invariant: record `r` must live only in shard
    /// [`shard_of`]`(r, shards.len())`. Exposed for the columnar kernels in `wpinq-expr`,
    /// whose exchanges produce per-destination shards directly.
    pub fn from_shards(shards: Vec<WeightedDataset<T>>) -> Self {
        debug_assert!(!shards.is_empty());
        ShardedDataset { shards }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards, indexed by [`shard_of`].
    pub fn shards(&self) -> &[WeightedDataset<T>] {
        &self.shards
    }

    /// Total number of records across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(WeightedDataset::len).sum()
    }

    /// Returns `true` when no shard holds any record.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(WeightedDataset::is_empty)
    }

    /// Reassembles the single-map dataset (shards are record-disjoint, so no weight
    /// arithmetic happens here — weights are moved bit-for-bit).
    pub fn merged(&self) -> WeightedDataset<T> {
        let mut out = WeightedDataset::with_capacity(self.len());
        for shard in &self.shards {
            for (record, weight) in shard.iter() {
                out.set_weight(record.clone(), weight);
            }
        }
        out
    }

    /// [`merged`](Self::merged), consuming the shards to avoid cloning records.
    pub fn into_merged(self) -> WeightedDataset<T> {
        let mut out = WeightedDataset::with_capacity(self.len());
        for shard in self.shards {
            for (record, weight) in shard {
                out.set_weight(record, weight);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------------------
// Worker scaffolding
// ---------------------------------------------------------------------------------------

/// Registry name of the counter of OS threads spawned by this module, cumulative over
/// the process (scoped workers and pool construction both count; pool *dispatches* do
/// not). The MCMC bench snapshots this series to prove the pooled engine spawns zero
/// threads per step in steady state: read it with
/// `wpinq_telemetry::registry().counter_value(THREADS_SPAWNED_METRIC)`.
pub const THREADS_SPAWNED_METRIC: &str = "wpinq_threads_spawned_total";

/// Registry name of the counter of multi-shard batches dispatched onto [`WorkerPool`]s
/// (single-shard batches run inline and are not counted), cumulative over the process.
pub const POOL_DISPATCHES_METRIC: &str = "wpinq_pool_dispatches_total";

fn threads_spawned_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            THREADS_SPAWNED_METRIC,
            &[],
            "OS threads spawned by shard workers (scoped per-call spawns plus pool construction)",
        )
    })
}

fn pool_dispatches_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            POOL_DISPATCHES_METRIC,
            &[],
            "Multi-shard batches dispatched onto worker pools",
        )
    })
}

/// Runs `f(shard_index, input)` for every input on scoped worker threads, returning the
/// results in shard order. Single-shard calls run inline to skip the spawn cost.
///
/// This is the reference strategy: it spawns `inputs.len()` fresh OS threads on every
/// call. Steady-state workloads should prefer a [`WorkerPool`] (via [`ShardRunner`]),
/// which is bitwise interchangeable.
///
/// Public because the sharded *incremental* engine in `wpinq-dataflow` drives its
/// per-operator delta kernels through the same worker scaffolding.
pub fn map_shards<I: Send, R: Send>(inputs: Vec<I>, f: impl Fn(usize, I) -> R + Sync) -> Vec<R> {
    if inputs.len() == 1 {
        let input = inputs.into_iter().next().expect("one input");
        return vec![f(0, input)];
    }
    threads_spawned_counter().add(inputs.len() as u64);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = inputs
            .into_iter()
            .enumerate()
            .map(|(index, input)| scope.spawn(move || f(index, input)))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("shard worker panicked"))
            .collect()
    })
}

/// Runs `f(shard_index)` for `0..n` on scoped worker threads.
pub fn for_each_shard<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    map_shards((0..n).collect::<Vec<_>>(), |_, index| f(index))
}

/// A work item shipped to a pool worker. Jobs constructed by [`WorkerPool::map`] catch
/// their own panics and always answer on their reply channel, so workers never die.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A pool of long-lived shard workers fed over `mpsc` channels.
///
/// Worker `i` owns shard index `i` (batch `k` of a dispatch runs on worker
/// `k % workers`), so repeated dispatches touch the same per-shard state from the same
/// OS thread. Results come back on per-call reply channels; [`map`](Self::map) blocks
/// until every reply has arrived, which is also what makes shipping non-`'static`
/// closures to the workers sound. Dropping the pool closes the job channels and joins
/// every worker.
///
/// A panic inside `f` is caught on the worker, shipped back, and re-raised from
/// [`map`](Self::map) on the calling thread *after* all other replies have been drained —
/// so the pool itself survives and stays usable.
pub struct WorkerPool {
    senders: Vec<mpsc::Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool of `workers` (clamped to ≥ 1) long-lived shard workers.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let mut senders = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for index in 0..workers {
            let (sender, receiver) = mpsc::channel::<Job>();
            threads_spawned_counter().inc();
            let handle = std::thread::Builder::new()
                .name(format!("wpinq-shard-{index}"))
                .spawn(move || {
                    while let Ok(job) = receiver.recv() {
                        // Jobs built by `map` catch panics internally; this outer guard
                        // keeps the worker alive even for future job kinds that do not.
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    }
                })
                .expect("failed to spawn shard worker");
            senders.push(sender);
            handles.push(handle);
        }
        WorkerPool { senders, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.senders.len()
    }

    /// The process-wide shared pool for a given worker count, created on first use.
    ///
    /// Pools live for the rest of the process (like a global thread pool), so every
    /// executor, dataflow graph and MCMC trajectory asking for the same shard count
    /// shares one set of workers and the spawn count stays flat after warm-up.
    pub fn shared(workers: usize) -> Arc<WorkerPool> {
        static SHARED: OnceLock<Mutex<HashMap<usize, Arc<WorkerPool>>>> = OnceLock::new();
        let workers = workers.max(1);
        let registry = SHARED.get_or_init(|| Mutex::new(HashMap::new()));
        let mut pools = registry.lock().expect("worker-pool registry poisoned");
        pools
            .entry(workers)
            .or_insert_with(|| Arc::new(WorkerPool::new(workers)))
            .clone()
    }

    /// Pool twin of [`map_shards`]: runs `f(shard_index, input)` for every input on the
    /// pool's workers (batch `k` on worker `k % workers`), returning results in shard
    /// order. Single-input calls run inline, bitwise-identically and without touching
    /// the channels.
    #[allow(unsafe_code)]
    pub fn map<I: Send, R: Send>(
        &self,
        inputs: Vec<I>,
        f: impl Fn(usize, I) -> R + Sync,
    ) -> Vec<R> {
        if inputs.is_empty() {
            return Vec::new();
        }
        if inputs.len() == 1 {
            let input = inputs.into_iter().next().expect("one input");
            return vec![f(0, input)];
        }
        pool_dispatches_counter().inc();
        let f = &f;
        let workers = self.senders.len();
        let mut replies = Vec::with_capacity(inputs.len());
        for (index, input) in inputs.into_iter().enumerate() {
            let (reply_tx, reply_rx) = mpsc::channel::<std::thread::Result<R>>();
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(|| f(index, input)));
                // The caller may already be unwinding a panic from an earlier batch and
                // have dropped the receiver; that is not this job's problem.
                let _ = reply_tx.send(result);
            });
            // SAFETY: the job borrows `f` from this stack frame, which is not `'static`,
            // but the channel (and the worker thread's signature) require `'static`.
            // Erasing the lifetime is sound because this function does not return until
            // the loop below has received on EVERY reply channel, and a reply channel
            // only yields (a value or a disconnect) once its job has run to completion
            // — or been destroyed unexecuted — on the worker. Either way no borrow held
            // by any job outlives this call.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
            self.senders[index % workers]
                .send(job)
                .expect("shard worker pool has shut down");
            replies.push(reply_rx);
        }
        let mut results = Vec::with_capacity(replies.len());
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for reply in replies {
            match reply.recv() {
                Ok(Ok(value)) => results.push(Some(value)),
                Ok(Err(payload)) => {
                    results.push(None);
                    panic.get_or_insert(payload);
                }
                // The job was dropped without running (worker shut down mid-call); every
                // remaining reply channel is drained all the same before raising.
                Err(mpsc::RecvError) => {
                    results.push(None);
                    panic.get_or_insert(Box::new("shard worker dropped a job without running it"));
                }
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every worker replied"))
            .collect()
    }

    /// Pool twin of [`for_each_shard`].
    pub fn for_each<R: Send>(&self, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        self.map((0..n).collect::<Vec<_>>(), |_, index| f(index))
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channels makes every worker's `recv` fail, ending its loop.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            // Workers only exit via channel disconnect; a join error would mean a job
            // escaped both catch_unwind guards. Never double-panic inside drop.
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "WorkerPool({} workers)", self.workers())
    }
}

/// The worker strategy a sharded batch kernel runs on.
///
/// Both strategies execute the identical per-shard computation in the identical shard
/// order, so their outputs are bitwise identical; the choice is purely about spawn cost.
#[derive(Clone, Copy)]
pub enum ShardRunner<'p> {
    /// Fresh `std::thread::scope` workers per call ([`map_shards`]).
    Scoped,
    /// Long-lived workers from a [`WorkerPool`].
    Pooled(&'p WorkerPool),
}

impl ShardRunner<'_> {
    /// Runs `f(shard_index, input)` for every input on this strategy's workers.
    pub fn map<I: Send, R: Send>(
        &self,
        inputs: Vec<I>,
        f: impl Fn(usize, I) -> R + Sync,
    ) -> Vec<R> {
        match self {
            ShardRunner::Scoped => map_shards(inputs, f),
            ShardRunner::Pooled(pool) => pool.map(inputs, f),
        }
    }

    /// Runs `f(shard_index)` for `0..n` on this strategy's workers.
    pub fn for_each<R: Send>(&self, n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
        self.map((0..n).collect::<Vec<_>>(), |_, index| f(index))
    }
}

impl std::fmt::Debug for ShardRunner<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardRunner::Scoped => write!(f, "ShardRunner::Scoped"),
            ShardRunner::Pooled(pool) => {
                write!(f, "ShardRunner::Pooled({} workers)", pool.workers())
            }
        }
    }
}

/// Routing buffers produced by one worker: one `(record, weight)` bucket per destination.
type Routed<T> = Vec<Vec<(T, f64)>>;

fn empty_routes<T>(n: usize) -> Routed<T> {
    (0..n).map(|_| Vec::new()).collect()
}

/// Transposes per-producer routing buffers and canonically accumulates each destination
/// shard in parallel. Collisions between contributions (same output record reached from
/// several producers, or several times from one) are resolved in canonical order.
fn exchange<U: Record>(routed: Vec<Routed<U>>, runner: ShardRunner<'_>) -> ShardedDataset<U> {
    let n = routed.first().map(Vec::len).expect("at least one producer");
    let mut by_dest: Vec<Vec<Vec<(U, f64)>>> = (0..n).map(|_| Vec::new()).collect();
    for producer in routed {
        debug_assert_eq!(producer.len(), n);
        for (dest, bucket) in producer.into_iter().enumerate() {
            by_dest[dest].push(bucket);
        }
    }
    let shards = runner.map(by_dest, |_, buckets| {
        let mut acc = Contributions::new();
        for bucket in buckets {
            for (record, weight) in bucket {
                acc.push(record, weight);
            }
        }
        acc.into_dataset()
    });
    ShardedDataset::from_shards(shards)
}

/// Routes a locally-computed dataset to destination buckets by output-record hash.
fn route_dataset<U: Record>(data: WeightedDataset<U>, n: usize) -> Routed<U> {
    let mut routes = empty_routes(n);
    for (record, weight) in data {
        routes[shard_of(&record, n)].push((record, weight));
    }
    routes
}

// ---------------------------------------------------------------------------------------
// Sharded operator kernels
// ---------------------------------------------------------------------------------------

/// Shard-parallel `Select` (see [`batch::select`]).
pub fn select<T, U, F>(
    data: &ShardedDataset<T>,
    f: &F,
    runner: ShardRunner<'_>,
) -> ShardedDataset<U>
where
    T: Record,
    U: Record,
    F: Fn(&T) -> U + Sync + ?Sized,
{
    let n = data.num_shards();
    let routed = runner.for_each(n, |index| {
        let mut routes = empty_routes(n);
        for (record, weight) in data.shards[index].iter() {
            let out = f(record);
            routes[shard_of(&out, n)].push((out, weight));
        }
        routes
    });
    exchange(routed, runner)
}

/// Shard-parallel `Where` (see [`batch::filter`]); record identity is preserved, so the
/// partitioning survives and no exchange happens.
pub fn filter<T, P>(
    data: &ShardedDataset<T>,
    predicate: &P,
    runner: ShardRunner<'_>,
) -> ShardedDataset<T>
where
    T: Record,
    P: Fn(&T) -> bool + Sync + ?Sized,
{
    let shards = runner.for_each(data.num_shards(), |index| {
        batch::filter(&data.shards[index], predicate)
    });
    ShardedDataset::from_shards(shards)
}

/// Shard-parallel `SelectMany` (see [`batch::select_many`]).
pub fn select_many<T, U, F>(
    data: &ShardedDataset<T>,
    f: &F,
    runner: ShardRunner<'_>,
) -> ShardedDataset<U>
where
    T: Record,
    U: Record,
    F: Fn(&T) -> WeightedDataset<U> + Sync + ?Sized,
{
    let n = data.num_shards();
    let routed = runner.for_each(n, |index| {
        let mut routes = empty_routes(n);
        for (record, weight) in data.shards[index].iter() {
            let produced = f(record);
            let norm = produced.norm();
            if norm == 0.0 {
                continue;
            }
            let scale = weight / norm.max(1.0);
            for (out, w) in produced.iter() {
                routes[shard_of(out, n)].push((out.clone(), w * scale));
            }
        }
        routes
    });
    exchange(routed, runner)
}

/// Shard-parallel `Shave` (see [`batch::shave`]). Outputs `(record, index)` are unique per
/// input record, so the exchange only re-routes — no cross-shard collisions exist.
pub fn shave<T, F, I>(
    data: &ShardedDataset<T>,
    schedule: &F,
    runner: ShardRunner<'_>,
) -> ShardedDataset<(T, u64)>
where
    T: Record,
    F: Fn(&T) -> I + Sync + ?Sized,
    I: IntoIterator<Item = f64>,
{
    let n = data.num_shards();
    let routed = runner.for_each(n, |index| {
        route_dataset(batch::shave(&data.shards[index], schedule), n)
    });
    exchange(routed, runner)
}

/// Shard-parallel `GroupBy` (see [`batch::group_by`]): records are exchanged by **key**
/// hash so each worker owns complete groups, then each worker runs the sequential kernel
/// (whose within-group order is already canonical) and routes its outputs.
pub fn group_by<T, K, R, KF, RF>(
    data: &ShardedDataset<T>,
    key: &KF,
    reduce: &RF,
    runner: ShardRunner<'_>,
) -> ShardedDataset<(K, R)>
where
    T: Record,
    K: Record,
    R: Record,
    KF: Fn(&T) -> K + Sync + ?Sized,
    RF: Fn(&[T]) -> R + Sync + ?Sized,
{
    let n = data.num_shards();
    // Exchange inputs by key hash (each record moves with its exact weight; records are
    // globally unique, so no accumulation happens).
    let routed = runner.for_each(n, |index| {
        let mut routes = empty_routes(n);
        for (record, weight) in data.shards[index].iter() {
            routes[shard_of(&key(record), n)].push((record.clone(), weight));
        }
        routes
    });
    let mut by_dest: Vec<Vec<(T, f64)>> = (0..n).map(|_| Vec::new()).collect();
    for producer in routed {
        for (dest, bucket) in producer.into_iter().enumerate() {
            by_dest[dest].extend(bucket);
        }
    }
    // Each worker reduces its complete key groups, then routes outputs by record hash.
    let produced = runner.map(by_dest, |_, records| {
        let part = WeightedDataset::from_pairs(records);
        route_dataset(batch::group_by(&part, key, reduce), n)
    });
    exchange(produced, runner)
}

/// Shard-parallel weight-rescaling `Join` (see [`batch::join`]): both inputs are exchanged
/// by key hash, each worker joins its complete key groups with canonically-ordered
/// normalising denominators, and the output contributions are exchanged by record hash.
pub fn join<A, B, K, R, KA, KB, RF>(
    a: &ShardedDataset<A>,
    b: &ShardedDataset<B>,
    key_a: &KA,
    key_b: &KB,
    result: &RF,
    runner: ShardRunner<'_>,
) -> ShardedDataset<R>
where
    A: Record,
    B: Record,
    K: Clone + Eq + Hash,
    R: Record,
    KA: Fn(&A) -> K + Sync + ?Sized,
    KB: Fn(&B) -> K + Sync + ?Sized,
    RF: Fn(&A, &B) -> R + Sync + ?Sized,
{
    let n = a.num_shards();
    assert_eq!(
        n,
        b.num_shards(),
        "join requires co-sharded inputs (same shard count)"
    );

    fn route_by_key<T: Record, K, KF>(
        data: &ShardedDataset<T>,
        key: &KF,
        n: usize,
        runner: ShardRunner<'_>,
    ) -> Vec<Vec<(T, f64)>>
    where
        KF: Fn(&T) -> K + Sync + ?Sized,
        K: Hash,
    {
        let routed = runner.for_each(n, |index| {
            let mut routes = empty_routes(n);
            for (record, weight) in data.shards[index].iter() {
                routes[shard_of(&key(record), n)].push((record.clone(), weight));
            }
            routes
        });
        let mut by_dest: Vec<Vec<(T, f64)>> = (0..n).map(|_| Vec::new()).collect();
        for producer in routed {
            for (dest, bucket) in producer.into_iter().enumerate() {
                by_dest[dest].extend(bucket);
            }
        }
        by_dest
    }

    let a_by_key = route_by_key(a, key_a, n, runner);
    let b_by_key = route_by_key(b, key_b, n, runner);

    let produced = runner.map(
        a_by_key.into_iter().zip(b_by_key).collect::<Vec<_>>(),
        |_, (recs_a, recs_b)| {
            // Each worker owns complete key groups; the asymmetric build-small/probe-large
            // core (shared with the batch kernel) emits bitwise-identical contributions
            // whichever side is indexed, so the per-worker choice is purely a cost call.
            // Matching the sequential kernel's two-level accumulation, contributions are
            // resolved per key *before* routing; the exchange then canonically sums the
            // per-key totals of records matched under keys on different workers.
            use rustc_hash::FxHashMap;
            let mut per_key: FxHashMap<K, Contributions<R>> = FxHashMap::default();
            if recs_a.len() <= recs_b.len() {
                batch::join_build_probe(
                    recs_a.iter().map(|(r, w)| (r, *w)),
                    recs_b.iter().map(|(r, w)| (r, *w)),
                    key_a,
                    key_b,
                    |key, part, rb, w_probe, denominator| {
                        let acc = batch::key_accumulator(&mut per_key, key);
                        for (ra, w_build) in part {
                            acc.push(result(ra, rb), w_build * w_probe / denominator);
                        }
                    },
                );
            } else {
                batch::join_build_probe(
                    recs_b.iter().map(|(r, w)| (r, *w)),
                    recs_a.iter().map(|(r, w)| (r, *w)),
                    key_b,
                    key_a,
                    |key, part, ra, w_probe, denominator| {
                        let acc = batch::key_accumulator(&mut per_key, key);
                        for (rb, w_build) in part {
                            acc.push(result(ra, rb), w_build * w_probe / denominator);
                        }
                    },
                );
            }
            let mut routes = empty_routes(n);
            for (_, contributions) in per_key {
                for (record, total) in contributions.into_dataset() {
                    routes[shard_of(&record, n)].push((record, total));
                }
            }
            routes
        },
    );
    exchange(produced, runner)
}

/// Shard-parallel element-wise `Union` (co-sharded inputs, shard-local, no exchange).
pub fn union<T: Record>(
    a: &ShardedDataset<T>,
    b: &ShardedDataset<T>,
    runner: ShardRunner<'_>,
) -> ShardedDataset<T> {
    binary(a, b, batch::union, runner)
}

/// Shard-parallel element-wise `Intersect` (co-sharded inputs, shard-local, no exchange).
pub fn intersect<T: Record>(
    a: &ShardedDataset<T>,
    b: &ShardedDataset<T>,
    runner: ShardRunner<'_>,
) -> ShardedDataset<T> {
    binary(a, b, batch::intersect, runner)
}

/// Shard-parallel element-wise `Concat` (co-sharded inputs, shard-local, no exchange).
pub fn concat<T: Record>(
    a: &ShardedDataset<T>,
    b: &ShardedDataset<T>,
    runner: ShardRunner<'_>,
) -> ShardedDataset<T> {
    binary(a, b, batch::concat, runner)
}

/// Shard-parallel element-wise `Except` (co-sharded inputs, shard-local, no exchange).
pub fn except<T: Record>(
    a: &ShardedDataset<T>,
    b: &ShardedDataset<T>,
    runner: ShardRunner<'_>,
) -> ShardedDataset<T> {
    binary(a, b, batch::except, runner)
}

fn binary<T: Record>(
    a: &ShardedDataset<T>,
    b: &ShardedDataset<T>,
    op: impl Fn(&WeightedDataset<T>, &WeightedDataset<T>) -> WeightedDataset<T> + Sync,
    runner: ShardRunner<'_>,
) -> ShardedDataset<T> {
    assert_eq!(
        a.num_shards(),
        b.num_shards(),
        "element-wise operators require co-sharded inputs (same shard count)"
    );
    let shards = runner.for_each(a.num_shards(), |index| {
        op(&a.shards[index], &b.shards[index])
    });
    ShardedDataset::from_shards(shards)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WeightedDataset<(u32, u32)> {
        WeightedDataset::from_pairs(
            (0u32..40)
                .flat_map(|i| (0u32..(i % 7)).map(move |j| ((i, j), 0.25 + (i + j) as f64 * 0.5))),
        )
    }

    fn assert_bitwise_eq<T: Record>(sharded: &ShardedDataset<T>, sequential: &WeightedDataset<T>) {
        let merged = sharded.merged();
        assert_eq!(merged.len(), sequential.len(), "record sets differ");
        for (record, weight) in sequential.iter() {
            assert_eq!(
                weight.to_bits(),
                merged.weight(record).to_bits(),
                "weight of {record:?} differs bitwise"
            );
        }
    }

    /// Runs `check` under both worker strategies for shard counts {1, 2, 8}.
    fn for_all_runners(check: impl Fn(usize, ShardRunner<'_>)) {
        for n in [1usize, 2, 8] {
            let pool = WorkerPool::shared(n);
            for runner in [ShardRunner::Scoped, ShardRunner::Pooled(&pool)] {
                check(n, runner);
            }
        }
    }

    #[test]
    fn partition_and_merge_round_trip_exactly() {
        let data = sample();
        for n in [1, 2, 3, 8] {
            let sharded = ShardedDataset::partition(&data, n);
            assert_eq!(sharded.num_shards(), n);
            assert_eq!(sharded.len(), data.len());
            assert_bitwise_eq(&sharded, &data);
            // Every record sits in its hash shard.
            for (index, shard) in sharded.shards().iter().enumerate() {
                for (record, _) in shard.iter() {
                    assert_eq!(shard_of(record, n), index);
                }
            }
        }
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let sharded = ShardedDataset::partition(&sample(), 0);
        assert_eq!(sharded.num_shards(), 1);
    }

    #[test]
    fn select_matches_sequential_bitwise() {
        let data = sample();
        // Deliberately collapse many records onto few outputs to force collisions.
        let f = |r: &(u32, u32)| r.0 % 5;
        let sequential = batch::select(&data, f);
        for_all_runners(|n, runner| {
            let sharded = select(&ShardedDataset::partition(&data, n), &f, runner);
            assert_bitwise_eq(&sharded, &sequential);
        });
    }

    #[test]
    fn filter_matches_sequential_bitwise() {
        let data = sample();
        let p = |r: &(u32, u32)| !(r.0 + r.1).is_multiple_of(3);
        let sequential = batch::filter(&data, p);
        for_all_runners(|n, runner| {
            let sharded = filter(&ShardedDataset::partition(&data, n), &p, runner);
            assert_bitwise_eq(&sharded, &sequential);
        });
    }

    #[test]
    fn select_many_matches_sequential_bitwise() {
        let data = sample();
        let f =
            |r: &(u32, u32)| WeightedDataset::from_records((0..(r.0 % 4)).map(|k| (r.0 + k) % 9));
        let sequential = batch::select_many(&data, f);
        for_all_runners(|n, runner| {
            let sharded = select_many(&ShardedDataset::partition(&data, n), &f, runner);
            assert_bitwise_eq(&sharded, &sequential);
        });
    }

    #[test]
    fn shave_matches_sequential_bitwise() {
        let data = sample();
        let schedule = |_: &(u32, u32)| std::iter::repeat(0.4);
        let sequential = batch::shave(&data, schedule);
        for_all_runners(|n, runner| {
            let sharded = shave(&ShardedDataset::partition(&data, n), &schedule, runner);
            assert_bitwise_eq(&sharded, &sequential);
        });
    }

    #[test]
    fn group_by_matches_sequential_bitwise() {
        let data = sample();
        let key = |r: &(u32, u32)| r.0 % 6;
        let reduce = |group: &[(u32, u32)]| group.len() as u64;
        let sequential = batch::group_by(&data, key, reduce);
        for_all_runners(|n, runner| {
            let sharded = group_by(&ShardedDataset::partition(&data, n), &key, &reduce, runner);
            assert_bitwise_eq(&sharded, &sequential);
        });
    }

    #[test]
    fn join_matches_sequential_bitwise() {
        let data = sample();
        let ka = |r: &(u32, u32)| r.0 % 8;
        let kb = |r: &(u32, u32)| (r.0 + r.1) % 8;
        // Collapse outputs so contributions collide across keys.
        let res = |x: &(u32, u32), y: &(u32, u32)| (x.1 % 3, y.1 % 3);
        let sequential = batch::join(&data, &data, ka, kb, res);
        for_all_runners(|n, runner| {
            let sharded_data = ShardedDataset::partition(&data, n);
            let sharded = join(&sharded_data, &sharded_data, &ka, &kb, &res, runner);
            assert_bitwise_eq(&sharded, &sequential);
        });
    }

    #[test]
    fn set_operators_match_sequential_bitwise() {
        let a = sample();
        let b = batch::select(&a, |r: &(u32, u32)| ((r.0 + 1) % 13, r.1));
        for_all_runners(|n, runner| {
            let sa = ShardedDataset::partition(&a, n);
            let sb = ShardedDataset::partition(&b, n);
            assert_bitwise_eq(&union(&sa, &sb, runner), &batch::union(&a, &b));
            assert_bitwise_eq(&intersect(&sa, &sb, runner), &batch::intersect(&a, &b));
            assert_bitwise_eq(&concat(&sa, &sb, runner), &batch::concat(&a, &b));
            assert_bitwise_eq(&except(&sa, &sb, runner), &batch::except(&a, &b));
        });
    }

    // -----------------------------------------------------------------------------------
    // WorkerPool behaviour
    // -----------------------------------------------------------------------------------

    #[test]
    fn pool_map_matches_scoped_map_including_oversubscription() {
        let pool = WorkerPool::new(2);
        for len in [0usize, 1, 2, 3, 8, 17] {
            let inputs: Vec<u64> = (0..len as u64).collect();
            let scoped = map_shards(inputs.clone(), |i, x| (i as u64) * 1000 + x * 3);
            let pooled = pool.map(inputs, |i, x| (i as u64) * 1000 + x * 3);
            assert_eq!(scoped, pooled, "length {len}");
        }
    }

    #[test]
    fn pool_construction_counts_spawns_and_dispatches() {
        let spawned_before = registry().counter_value(THREADS_SPAWNED_METRIC);
        let pool = WorkerPool::new(3);
        assert!(registry().counter_value(THREADS_SPAWNED_METRIC) >= spawned_before + 3);
        let dispatches_before = registry().counter_value(POOL_DISPATCHES_METRIC);
        let _ = pool.map(vec![1, 2, 3], |_, x| x);
        assert!(registry().counter_value(POOL_DISPATCHES_METRIC) > dispatches_before);
        // Single-input batches run inline: no dispatch is recorded by *this* call
        // (other tests may dispatch concurrently, so only the monotone bound is exact).
        let _ = pool.map(vec![7], |_, x| x);
    }

    #[test]
    fn worker_panic_propagates_and_pool_stays_usable() {
        let pool = WorkerPool::new(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.map(vec![0u32, 1, 2, 3], |_, x| {
                if x == 2 {
                    panic!("boom in shard worker");
                }
                x
            })
        }));
        assert!(outcome.is_err(), "panic must propagate to the caller");
        // All four jobs were drained, so the pool is clean and reusable.
        let again = pool.map(vec![10u32, 20, 30], |_, x| x + 1);
        assert_eq!(again, vec![11, 21, 31]);
    }

    #[test]
    fn pool_drops_cleanly_even_twice_through_shared_handles() {
        // Dropping an owned pool joins its workers without hanging or panicking.
        let owned = WorkerPool::new(2);
        let _ = owned.map(vec![1, 2], |_, x| x);
        drop(owned);

        // Two handles to one shared pool: dropping both must be safe, and the pool
        // itself keeps serving other handles for the rest of the process.
        let first = WorkerPool::shared(2);
        let second = WorkerPool::shared(2);
        assert!(Arc::ptr_eq(&first, &second), "registry must share pools");
        let _ = first.map(vec![1, 2, 3], |_, x| x);
        drop(first);
        drop(second);
        let third = WorkerPool::shared(2);
        assert_eq!(third.map(vec![5, 6], |_, x| x * 2), vec![10, 12]);
    }

    #[test]
    fn pool_survives_panic_then_drops_cleanly() {
        let pool = WorkerPool::new(2);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.map(vec![0u32, 1], |_, _| -> u32 {
                panic!("both workers blow up")
            })
        }));
        assert!(outcome.is_err());
        drop(pool); // must join, not hang or double-panic
    }

    #[test]
    fn runner_kernels_share_one_pool_across_calls() {
        let data = sample();
        let pool = WorkerPool::shared(8);
        let spawned_after_warmup = {
            // Warm the pool, then prove repeated kernel dispatches spawn nothing more
            // *from this pool* (global counter may move if other tests spawn — use the
            // dispatch counter, which only pools bump, as the steady-state signal).
            let _ = filter(
                &ShardedDataset::partition(&data, 8),
                &|_: &(u32, u32)| true,
                ShardRunner::Pooled(&pool),
            );
            registry().counter_value(POOL_DISPATCHES_METRIC)
        };
        let _ = select(
            &ShardedDataset::partition(&data, 8),
            &|r: &(u32, u32)| r.0,
            ShardRunner::Pooled(&pool),
        );
        assert!(
            registry().counter_value(POOL_DISPATCHES_METRIC) > spawned_after_warmup,
            "select dispatched on the pool"
        );
    }
}
