//! Golden-fixture pin for the colwire version-1 frame layout.
//!
//! The hex string below is the committed byte-exact encoding of a fixed batch. If any
//! structural change to the format lands without bumping [`COLWIRE_VERSION`] — a moved
//! field, a changed width, a different tag — this test fails. To change the layout:
//! bump the version, re-derive the fixture from the new encoder, and document the new
//! frame in PROTOCOL.md.

use wpinq_core::column::ColumnBatch;
use wpinq_core::colwire::{decode_batch, encode_batch, from_base64, to_base64, COLWIRE_VERSION};
use wpinq_core::value::{Value, ValueType};

/// A fixed batch covering every leaf kind, integer extremes, and weights whose bit
/// patterns are load-bearing (a quiet NaN, negative zero, a non-terminating fraction).
fn golden_batch() -> ColumnBatch {
    let rows = [
        (
            Value::Tuple(vec![
                Value::U64(3),
                Value::I64(-7),
                Value::Bool(true),
                Value::Unit,
            ]),
            1.25,
        ),
        (
            Value::Tuple(vec![
                Value::U64(u64::MAX),
                Value::I64(i64::MIN),
                Value::Bool(false),
                Value::Unit,
            ]),
            f64::from_bits(0x7ff8_0000_0000_0000), // quiet NaN, fixed payload
        ),
        (
            Value::Tuple(vec![
                Value::U64(0),
                Value::I64(0),
                Value::Bool(true),
                Value::Unit,
            ]),
            -0.0,
        ),
        (
            Value::Tuple(vec![
                Value::U64(42),
                Value::I64(42),
                Value::Bool(false),
                Value::Unit,
            ]),
            1.0 / 3.0,
        ),
    ];
    let ty = rows[0].0.type_of();
    ColumnBatch::from_pairs(ty, rows.iter().map(|(v, w)| (v, *w))).unwrap()
}

/// The committed version-1 frame for [`golden_batch`], as lowercase hex.
const GOLDEN_FRAME_HEX: &str = "7b00000057505143010000000404000203010004000000000000000300000000000000ffffffffffffffff00000000000000002a00000000000000f9ffffffffffffff000000000000008000000000000000002a0000000000000001000100000000000000f43f000000000000f87f0000000000000080555555555555d53f";

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn from_hex(text: &str) -> Vec<u8> {
    assert!(text.len().is_multiple_of(2), "ragged hex fixture");
    (0..text.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&text[i..i + 2], 16).expect("hex fixture"))
        .collect()
}

/// Encoding the fixed batch must reproduce the committed frame byte for byte. A
/// mismatch means the layout drifted without a version bump.
#[test]
fn encoder_reproduces_the_committed_frame() {
    assert_eq!(
        COLWIRE_VERSION, 1,
        "layout version changed: regenerate GOLDEN_FRAME_HEX for the new version"
    );
    let frame = encode_batch(&golden_batch());
    assert_eq!(
        to_hex(&frame),
        GOLDEN_FRAME_HEX,
        "colwire frame bytes drifted without a COLWIRE_VERSION bump"
    );
}

/// The committed frame must still decode to the exact batch — shape, integer bits,
/// bool values, and weight bit patterns all intact.
#[test]
fn committed_frame_decodes_bit_exactly() {
    let batch = golden_batch();
    let decoded = decode_batch(&from_hex(GOLDEN_FRAME_HEX)).expect("golden frame decodes");
    assert_eq!(decoded.ty(), batch.ty());
    assert_eq!(decoded.columns(), batch.columns());
    assert_eq!(decoded.len(), batch.len());
    for (a, b) in batch.weights().iter().zip(decoded.weights()) {
        assert_eq!(a.to_bits(), b.to_bits(), "weight bits drifted");
    }
    assert_eq!(
        decoded.ty(),
        &ValueType::Tuple(vec![
            ValueType::U64,
            ValueType::I64,
            ValueType::Bool,
            ValueType::Unit
        ])
    );
}

/// The base64 form embedded in service envelopes is pinned transitively: encode → b64 →
/// decode must land on the committed bytes.
#[test]
fn base64_projection_round_trips_the_committed_frame() {
    let bytes = from_hex(GOLDEN_FRAME_HEX);
    assert_eq!(from_base64(&to_base64(&bytes)).unwrap(), bytes);
}
