//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the `bench` crate uses — [`Criterion`], benchmark groups,
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros —
//! with a simple fixed-budget timing loop instead of criterion's statistical machinery.
//! Each benchmark runs a short warm-up, then measures `sample_size` batches and reports the
//! per-iteration mean and min to stdout. Benches must set `harness = false`, exactly as with
//! real criterion.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmark bodies.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// An identifier combining a function name and a parameter, e.g. `join/1000`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `{function_name}/{parameter}`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    iters_per_sample: u64,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it enough times to collect the configured samples.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Warm-up and calibration: size each sample so it takes a measurable slice of time.
        let calibration = Instant::now();
        black_box(routine());
        let once = calibration.elapsed().max(Duration::from_nanos(50));
        let target = Duration::from_millis(20);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.results
                .push(start.elapsed() / self.iters_per_sample as u32);
        }
    }

    fn report(&self, id: &str) {
        if self.results.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let min = self.results.iter().min().unwrap();
        let total: Duration = self.results.iter().sum();
        let mean = total / self.results.len() as u32;
        println!(
            "{id:<40} mean {mean:>12?}  min {min:>12?}  ({} samples x {} iters)",
            self.results.len(),
            self.iters_per_sample
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            iters_per_sample: 1,
            results: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{id}", self.name));
    }

    /// Benchmarks `f` under the given id.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id.to_string(), f);
        self
    }

    /// Benchmarks `f`, passing it a reference to `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("join", 1000).to_string(), "join/1000");
    }
}
