//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim implements the
//! (small) slice of the `rand` 0.8 API the workspace actually uses: the [`Rng`] extension
//! trait with `gen`, `gen_range` and `gen_bool`, [`SeedableRng`] with `seed_from_u64`, a
//! deterministic [`rngs::StdRng`] built on xoshiro256++, the [`rngs::mock::StepRng`] used
//! by tests, and the slice helpers in [`seq`]. Distribution quality matches what the
//! statistical tests in this workspace need (mean/variance checks over 10⁴–10⁵ samples);
//! it is *not* a cryptographic generator.

#![forbid(unsafe_code)]

/// Core interface: a source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns 32 random bits (the upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly "from all values" via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift mapping of a 64-bit word onto [0, span); bias is at most
                // span/2^64, far below what any consumer of this shim can observe.
                let word = rng.next_u64() as u128;
                let offset = (word * span) >> 64;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                // i128 holds every value and span of the 64-bit-and-below integer types,
                // including the full-width u64 span of 2^64.
                let span = (end as i128 - start as i128 + 1) as u128;
                let word = rng.next_u64() as u128;
                let offset = (word * span) >> 64;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        SampleRange::<f64>::sample_from(self.start as f64..self.end as f64, rng) as f32
    }
}

/// The user-facing random-number interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (`u32`/`u64` uniform, `f64` in
    /// `[0, 1)`, `bool` fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator seeded from another generator.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::seed_from_u64(rng.next_u64())
    }
}

/// Bundled generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded through SplitMix64.
    ///
    /// Deterministic for a given seed, passes the statistical checks in this repo's test
    /// suite, and is cheap enough for the MCMC inner loop. Not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix(&mut state);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Trivial generators for deterministic tests.
    pub mod mock {
        use super::super::RngCore;

        /// A "generator" that counts up from `initial` by `increment` — useful when a test
        /// needs a [`Rng`](crate::Rng) but no randomness.
        #[derive(Debug, Clone)]
        pub struct StepRng {
            state: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates a generator returning `initial`, `initial + increment`, …
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    state: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.state;
                self.state = self.state.wrapping_add(self.increment);
                out
            }
        }
    }
}

/// Sequence-related helpers (`choose`, `shuffle`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(5..=9usize);
            assert!((5..=9).contains(&i));
        }
    }

    #[test]
    fn unit_floats_are_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn step_rng_counts_up() {
        let mut rng = StepRng::new(5, 2);
        use super::RngCore;
        assert_eq!(rng.next_u64(), 5);
        assert_eq!(rng.next_u64(), 7);
    }

    #[test]
    fn shuffle_and_choose_work() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, original, "a 50-element shuffle should move something");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
        assert!(v.as_slice().choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.as_slice().choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }
}
