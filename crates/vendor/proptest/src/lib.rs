//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property tests use:
//! [`Strategy`] with `prop_map`, range and tuple strategies, [`collection::vec`],
//! `prop::bool::ANY`, [`ProptestConfig`], and the [`proptest!`]/[`prop_assert!`] macros.
//! Cases are generated from a deterministic per-test RNG; there is no shrinking — a failing
//! case reports its seed and generated inputs through the ordinary assertion message.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

/// Configuration accepted by `#![proptest_config(...)]` inside [`proptest!`].
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Strategies over collections.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A strategy producing vectors whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespaced primitive strategies (`prop::bool::ANY`, …).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// A fair-coin boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The strategy producing `true` or `false` with equal probability.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut StdRng) -> bool {
                rng.gen::<bool>()
            }
        }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Runs `cases` iterations of a property, deriving a distinct deterministic RNG per case
/// from the test name. Used by the [`proptest!`] macro expansion.
pub fn run_property<F: FnMut(&mut StdRng, u64)>(name: &str, cases: u32, mut body: F) {
    use rand::SeedableRng;
    // FNV-style fold of the test name so different properties explore different streams.
    let mut name_seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        name_seed ^= *b as u64;
        name_seed = name_seed.wrapping_mul(0x1000_0000_01b3);
    }
    for case in 0..cases as u64 {
        let mut rng = StdRng::seed_from_u64(name_seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        body(&mut rng, case);
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }` becomes a
/// `#[test]` running the body over randomly generated arguments.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(stringify!($name), config.cases, |rng, _case| {
                    $(let $arg = $crate::Strategy::generate(&$strategy, rng);)+
                    $body
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Assertion macro used inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion macro used inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        super::run_property("bounds", 64, |rng, _| {
            let v = Strategy::generate(&(0u32..10, -1.0f64..1.0), rng);
            assert!(v.0 < 10);
            assert!((-1.0..1.0).contains(&v.1));
        });
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        super::run_property("lens", 64, |rng, _| {
            let v = Strategy::generate(&collection::vec(0u8..4, 1..9), rng);
            assert!((1..9).contains(&v.len()));
        });
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_smoke(xs in collection::vec((0u32..6, prop::bool::ANY), 0..8)) {
            let mapped: Vec<u32> = xs.iter().map(|(v, b)| v + *b as u32).collect();
            prop_assert!(mapped.iter().all(|v| *v <= 6));
        }

        #[test]
        fn prop_map_applies(x in (0u8..5).prop_map(|v| v * 2)) {
            prop_assert!(x % 2 == 0 && x < 10);
        }
    }
}
