//! Offline stand-in for the `rustc-hash` crate: [`FxHashMap`]/[`FxHashSet`] built on a
//! fast multiply-xor hasher.
//!
//! Std's default SipHash is DoS-resistant but slow for the small fixed-width keys (edge
//! tuples, degree triples, node ids) that dominate this workspace's hot maps. This hasher
//! folds each word into the state with a xor + rotate + odd-constant multiply — the same
//! shape as FxHash — which benchmarks several times faster on such keys. It is **not**
//! collision-resistant against adversarial inputs; use it only for internal state, never
//! for attacker-controlled keys.

#![forbid(unsafe_code)]

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher for fixed-width keys.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so sequential keys spread across the table.
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn hashing_is_deterministic_and_discriminating() {
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
    }

    #[test]
    fn sequential_keys_spread_over_buckets() {
        // The avalanche step must keep low bits varied for sequential keys, since HashMap
        // uses the low bits for bucket selection.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..64u64 {
            low_bits.insert(hash_of(&i) & 0x3f);
        }
        assert!(
            low_bits.len() > 32,
            "only {} distinct buckets",
            low_bits.len()
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut map: FxHashMap<(u32, u32), f64> = FxHashMap::default();
        map.insert((1, 2), 0.5);
        assert_eq!(map.get(&(1, 2)), Some(&0.5));
        let mut set: FxHashSet<u32> = FxHashSet::default();
        set.insert(7);
        assert!(set.contains(&7));
    }
}
