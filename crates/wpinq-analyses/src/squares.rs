//! Squares-by-Degree (SbD): Section 3.4 and Theorem 3.
//!
//! Length-three paths are formed by joining annotated length-two paths with themselves,
//! then matched against their double rotation to discover 4-cycles together with all four
//! vertex degrees. The edges dataset is used 12 times.

use rand::Rng;

use wpinq::{Expr, NoisyCounts, Plan, Queryable, WpinqError};

use crate::edges::Edge;
use crate::triangles::{paths_with_middle_degree_plan, paths_with_middle_degree_plan_expr};

/// A length-three path `(a, b, c, d)` annotated with its two interior degrees
/// `(d_b, d_c)`.
pub type AnnotatedLengthThreePath = ((u32, u32, u32, u32), u64, u64);

/// Length-three paths `(a, b, c, d)` (with `a ≠ d`) annotated with the two interior
/// degrees, as a plan: records `((a, b, c, d), d_b, d_c)` with weight
/// `1 / (2·(d_b²(d_c − 1) + d_c²(d_b − 1)))` (equation (5)).
///
/// Privacy multiplicity: 6.
pub fn length_three_paths_plan(edges: &Plan<Edge>) -> Plan<AnnotatedLengthThreePath> {
    let abc = paths_with_middle_degree_plan(edges, 1);
    abc.join(
        &abc,
        |x| (x.0 .1, x.0 .2),
        |y| (y.0 .0, y.0 .1),
        |x, y| ((x.0 .0, x.0 .1, x.0 .2, y.0 .2), x.1, y.1),
    )
    .filter(|(p, _, _)| p.0 != p.3)
}

/// The Squares-by-Degree query as a plan: sorted degree quadruples of the vertices of
/// every 4-cycle.
///
/// Privacy multiplicity: 12.
pub fn sbd_plan(edges: &Plan<Edge>) -> Plan<(u64, u64, u64, u64)> {
    let abcd = length_three_paths_plan(edges);
    // Double rotation (a,b,c,d) → (c,d,a,b); the attached degrees stay with the original
    // interior vertices, which become the outer vertices of the rotated path.
    let cdab = abcd.select(|(p, db, dc)| ((p.2, p.3, p.0, p.1), *db, *dc));
    let squares = abcd.join(&cdab, |x| x.0, |y| y.0, |x, y| (y.1, y.2, x.1, x.2));
    squares.select(|(d1, d2, d3, d4)| {
        let mut q = [*d1, *d2, *d3, *d4];
        q.sort_unstable();
        (q[0], q[1], q[2], q[3])
    })
}

/// [`length_three_paths_plan`] in expression form (serializable; byte-identical
/// weights). Privacy multiplicity: 6.
pub fn length_three_paths_plan_expr(edges: &Plan<Edge>) -> Plan<AnnotatedLengthThreePath> {
    let x = Expr::input();
    let abc = paths_with_middle_degree_plan_expr(edges, 1);
    abc.join_expr::<((u32, u32, u32), u64), (u32, u32), AnnotatedLengthThreePath>(
        &abc,
        Expr::tuple(vec![
            x.clone().field(0).field(1),
            x.clone().field(0).field(2),
        ]),
        Expr::tuple(vec![
            x.clone().field(0).field(0),
            x.clone().field(0).field(1),
        ]),
        Expr::tuple(vec![
            Expr::tuple(vec![
                x.clone().field(0).field(0).field(0),
                x.clone().field(0).field(0).field(1),
                x.clone().field(0).field(0).field(2),
                x.clone().field(1).field(0).field(2),
            ]),
            x.clone().field(0).field(1),
            x.clone().field(1).field(1),
        ]),
    )
    .filter_expr(x.clone().field(0).field(0).ne(x.field(0).field(3)))
}

/// [`sbd_plan`] in expression form: the full 12-multiplicity Squares-by-Degree query as
/// pure data — annotated length-three paths matched against their double rotation, the
/// degree quadruple sorted by the expression language's `sort` — shippable to a
/// measurement service.
pub fn sbd_plan_expr(edges: &Plan<Edge>) -> Plan<(u64, u64, u64, u64)> {
    let x = Expr::input();
    let abcd = length_three_paths_plan_expr(edges);
    // Double rotation (a,b,c,d) → (c,d,a,b); attached degrees stay put.
    let cdab = abcd.select_expr::<AnnotatedLengthThreePath>(Expr::tuple(vec![
        Expr::tuple(vec![
            x.clone().field(0).field(2),
            x.clone().field(0).field(3),
            x.clone().field(0).field(0),
            x.clone().field(0).field(1),
        ]),
        x.clone().field(1),
        x.clone().field(2),
    ]));
    let squares = abcd
        .join_expr::<AnnotatedLengthThreePath, (u32, u32, u32, u32), (u64, u64, u64, u64)>(
            &cdab,
            x.clone().field(0),
            x.clone().field(0),
            Expr::tuple(vec![
                x.clone().field(1).field(1),
                x.clone().field(1).field(2),
                x.clone().field(0).field(1),
                x.clone().field(0).field(2),
            ]),
        );
    squares.select_expr::<(u64, u64, u64, u64)>(x.sort())
}

/// [`length_three_paths_plan`] applied to a protected edge dataset.
pub fn length_three_paths_query(edges: &Queryable<Edge>) -> Queryable<AnnotatedLengthThreePath> {
    edges.apply(length_three_paths_plan)
}

/// [`sbd_plan`] applied to a protected edge dataset.
pub fn sbd_query(edges: &Queryable<Edge>) -> Queryable<(u64, u64, u64, u64)> {
    edges.apply(sbd_plan)
}

/// Equation (6): the weight of one *discovery* of a square whose vertices, in path order
/// `a-b-c-d`, have the given degrees.
pub fn sbd_discovery_weight(da: u64, db: u64, dc: u64, dd: u64) -> f64 {
    let (da, db, dc, dd) = (da as f64, db as f64, dc as f64, dd as f64);
    1.0 / (2.0
        * (da * da * (dd - 1.0)
            + dd * dd * (da - 1.0)
            + db * db * (dc - 1.0)
            + dc * dc * (db - 1.0)))
}

/// The total weight a square contributes to its sorted degree quadruple: the sum of
/// [`sbd_discovery_weight`] over its eight discoveries (four rotations in each direction).
pub fn sbd_square_weight(da: u64, db: u64, dc: u64, dd: u64) -> f64 {
    // Discoveries traverse the cycle a-b-c-d-a starting at each vertex, in both directions.
    let cycle = [da, db, dc, dd];
    let mut total = 0.0;
    for start in 0..4 {
        let fwd = [
            cycle[start],
            cycle[(start + 1) % 4],
            cycle[(start + 2) % 4],
            cycle[(start + 3) % 4],
        ];
        let bwd = [
            cycle[start],
            cycle[(start + 3) % 4],
            cycle[(start + 2) % 4],
            cycle[(start + 1) % 4],
        ];
        total += sbd_discovery_weight(fwd[0], fwd[1], fwd[2], fwd[3]);
        total += sbd_discovery_weight(bwd[0], bwd[1], bwd[2], bwd[3]);
    }
    total
}

/// The noise amplitude Theorem 3 attaches to the released count for degree quadruple
/// `(v, x, y, z)`: `6·(v·x·(v + x) + y·z·(y + z)) / ε`.
pub fn theorem3_noise_amplitude(v: u64, x: u64, y: u64, z: u64, epsilon: f64) -> f64 {
    let (v, x, y, z) = (v as f64, x as f64, y as f64, z as f64);
    6.0 * (v * x * (v + x) + y * z * (y + z)) / epsilon
}

/// A released SbD measurement.
#[derive(Debug)]
pub struct SbdMeasurement {
    counts: NoisyCounts<(u64, u64, u64, u64)>,
    epsilon: f64,
}

impl SbdMeasurement {
    /// Measures the SbD with `NoisyCount(·, ε)`, charging `12ε`.
    pub fn measure<R: Rng + ?Sized>(
        edges: &Queryable<Edge>,
        epsilon: f64,
        rng: &mut R,
    ) -> Result<Self, WpinqError> {
        let counts = sbd_query(edges).noisy_count(epsilon, rng)?;
        Ok(SbdMeasurement { counts, epsilon })
    }

    /// The ε of the measurement.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The noisy weight observed for a sorted degree quadruple.
    pub fn raw(&self, quad: (u64, u64, u64, u64)) -> f64 {
        self.counts.get(&quad)
    }

    /// The underlying noisy counts.
    pub fn counts(&self) -> &NoisyCounts<(u64, u64, u64, u64)> {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::GraphEdges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wpinq::PrivacyBudget;
    use wpinq_graph::{stats, Graph};

    fn cycle4() -> Graph {
        Graph::from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
    }

    fn complete4() -> Graph {
        Graph::from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn length_three_paths_weight_matches_equation_five() {
        let g = cycle4();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let abcd = length_three_paths_query(&edges.queryable());
        // All degrees are 2, so equation (5) gives 1 / (2·(4·1 + 4·1)) = 1/16.
        let w = abcd.inspect().weight(&((0, 1, 2, 3), 2, 2));
        assert!((w - 1.0 / 16.0).abs() < 1e-9, "weight {w}");
        assert_eq!(abcd.max_multiplicity(), 6);
    }

    #[test]
    fn sbd_weight_on_the_four_cycle() {
        let g = cycle4();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let sbd = sbd_query(&edges.queryable());
        // One square, all degrees 2: eight discoveries of weight 1/32 each → 1/4.
        let w = sbd.inspect().weight(&(2, 2, 2, 2));
        assert!((w - 0.25).abs() < 1e-9, "weight {w}");
        assert!((sbd_square_weight(2, 2, 2, 2) - 0.25).abs() < 1e-12);
        assert_eq!(sbd.inspect().len(), 1);
    }

    #[test]
    fn sbd_weight_on_the_complete_graph() {
        let g = complete4();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let sbd = sbd_query(&edges.queryable());
        // K4 has 3 squares, all degrees 3. Discovery weight: 1/(2·(9·2 + 9·2 + 9·2 + 9·2)) = 1/144.
        let expected = 3.0 * 8.0 / 144.0;
        let w = sbd.inspect().weight(&(3, 3, 3, 3));
        assert!((w - expected).abs() < 1e-9, "weight {w} vs {expected}");
        assert!((sbd_square_weight(3, 3, 3, 3) - 8.0 / 144.0).abs() < 1e-12);
        assert_eq!(stats::square_count(&g), 3);
    }

    #[test]
    fn sbd_expr_form_matches_closure_form_bitwise_and_serializes() {
        use wpinq::plan::PlanBindings;
        let mut rng = StdRng::seed_from_u64(29);
        let g = wpinq_graph::generators::powerlaw_cluster(24, 3, 0.6, &mut rng);
        let source = wpinq::Plan::<Edge>::source_expr("edges");
        let mut bindings = PlanBindings::new();
        bindings.bind(&source, crate::edges::symmetric_edge_dataset(&g));

        let a = sbd_plan(&source).eval(&bindings);
        let b = sbd_plan_expr(&source).eval(&bindings);
        assert_eq!(a.len(), b.len());
        for (record, weight) in a.iter() {
            assert_eq!(
                weight.to_bits(),
                b.weight(record).to_bits(),
                "SbD expr form differs at {record:?}"
            );
        }

        let expr_plan = sbd_plan_expr(&source);
        assert!(expr_plan.to_spec().is_some(), "SbD expr form serializes");
        assert_eq!(
            expr_plan.multiplicity_of(source.input_id().unwrap()),
            12,
            "SbD uses the edges source twelve times"
        );
        assert_eq!(
            length_three_paths_plan_expr(&source).multiplicity_of(source.input_id().unwrap()),
            6
        );
        assert!(sbd_plan(&source).to_spec().is_none());
    }

    #[test]
    fn sbd_costs_twelve_uses() {
        let g = cycle4();
        let edges = GraphEdges::new(&g, PrivacyBudget::new(2.0));
        let q = sbd_query(&edges.queryable());
        assert_eq!(q.multiplicity_of(edges.protected().id()), 12);
        let mut rng = StdRng::seed_from_u64(0);
        q.noisy_count(0.1, &mut rng).unwrap();
        assert!((edges.budget().spent() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn triangle_free_square_free_graph_has_empty_sbd() {
        let g = Graph::from_edges([(0, 1), (1, 2), (2, 3)]);
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        assert!(sbd_query(&edges.queryable()).inspect().is_empty());
    }

    #[test]
    fn measurement_recovers_square_signal_at_high_epsilon() {
        let g = cycle4();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let mut rng = StdRng::seed_from_u64(4);
        let m = SbdMeasurement::measure(&edges.queryable(), 1e6, &mut rng).unwrap();
        assert!((m.raw((2, 2, 2, 2)) - 0.25).abs() < 0.01);
    }

    #[test]
    fn theorem3_amplitude_formula() {
        let amp = theorem3_noise_amplitude(2, 3, 4, 5, 0.5);
        let expected = 6.0 * (2.0 * 3.0 * 5.0 + 4.0 * 5.0 * 9.0) / 0.5;
        assert!((amp - expected).abs() < 1e-9);
    }
}
