//! Measurement workloads: merging independently-authored query requests before paying
//! for them.
//!
//! A measurement service fronting a protected graph receives query requests from callers
//! that do not coordinate — two dashboard panels, two analysts, a retry loop — and the
//! requests routinely re-derive the same statistic from scratch. Expressed naively, the
//! combined workload references the protected edges once per request and a `NoisyCount`
//! pays `k·ε` for `k` requests of the *same* answer.
//!
//! This module expresses the combined workload as one plan (requests merged by
//! element-wise maximum, [`Plan::union`]) and leans on the plan optimizer: structural
//! common-subplan extraction makes duplicate requests pointer-identical, the idempotent
//! collapse `Union(X, X) → X` then removes the redundant branch, and the measurement is
//! charged for the deduplicated plan while releasing exactly the bytes the naive plan
//! would have released. `Plan::explain()` shows the saving:
//!
//! ```
//! use wpinq::plan::{OptimizeLevel, Plan};
//! use wpinq_analyses::workload::degree_workload_plan;
//!
//! let edges = Plan::source();
//! let workload = degree_workload_plan(&edges);
//! let report = workload.explain_at(OptimizeLevel::Full);
//! assert_eq!(report.total_before(), 2); // two requests, 2ε as authored…
//! assert_eq!(report.total_after(), 1); // …1ε after optimization, same bytes.
//! assert!(report.epsilon_saved());
//! ```

use wpinq::plan::Plan;
use wpinq::{Queryable, Record};

use crate::degree::degree_ccdf_plan;
use crate::edges::Edge;
use crate::tbi::triangle_paths_plan;

/// Merges same-typed query requests into one plan by element-wise maximum.
///
/// The merged plan answers every request at once (each request's records are dominated
/// by the union). As authored it costs the *sum* of the requests' multiplicities; under
/// the optimizer, requests that are structurally equal collapse and are paid for once.
///
/// # Panics
/// Panics when `requests` is empty — there is nothing to measure.
pub fn merge_requests<T, I>(requests: I) -> Plan<T>
where
    T: Record,
    I: IntoIterator<Item = Plan<T>>,
{
    let mut requests = requests.into_iter();
    let first = requests
        .next()
        .expect("merge_requests needs at least one request");
    requests.fold(first, |merged, next| merged.union(&next))
}

/// The double-request degree workload: two independently-authored requests for the
/// degree CCDF (each its own [`degree_ccdf_plan`] instantiation), merged.
///
/// Privacy multiplicity as authored: 2. After optimization: 1 — the optimizer proves the
/// requests identical and one release answers both.
pub fn degree_workload_plan(edges: &Plan<Edge>) -> Plan<u64> {
    merge_requests([degree_ccdf_plan(edges), degree_ccdf_plan(edges)])
}

/// The double-request triangle workload: two independently-authored requests for the
/// triangle-supporting paths of [`triangle_paths_plan`], merged.
///
/// Privacy multiplicity as authored: 8 (two 4ε TbI path queries). After optimization: 4.
pub fn triangle_workload_plan(edges: &Plan<Edge>) -> Plan<(u32, u32, u32)> {
    merge_requests([triangle_paths_plan(edges), triangle_paths_plan(edges)])
}

/// [`degree_workload_plan`] applied to a protected edge dataset.
pub fn degree_workload_query(edges: &Queryable<Edge>) -> Queryable<u64> {
    edges.apply(degree_workload_plan)
}

/// [`triangle_workload_plan`] applied to a protected edge dataset.
pub fn triangle_workload_query(edges: &Queryable<Edge>) -> Queryable<(u32, u32, u32)> {
    edges.apply(triangle_workload_plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::GraphEdges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wpinq::plan::{OptimizeLevel, PlanBindings, SequentialExecutor};
    use wpinq::PrivacyBudget;
    use wpinq_graph::Graph;

    fn toy_graph() -> Graph {
        Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn degree_workload_explain_shows_strictly_lower_multiplicity() {
        let edges = Plan::<Edge>::source();
        let id = edges.input_id().unwrap();
        let workload = degree_workload_plan(&edges);
        let report = workload.explain_at(OptimizeLevel::Full);
        assert_eq!(report.before.get(&id), Some(&2));
        assert_eq!(report.after.get(&id), Some(&1));
        assert!(report.epsilon_saved());
        assert!(report.nodes_after < report.nodes_before);
    }

    #[test]
    fn triangle_workload_explain_shows_strictly_lower_multiplicity() {
        let edges = Plan::<Edge>::source();
        let id = edges.input_id().unwrap();
        let workload = triangle_workload_plan(&edges);
        assert_eq!(workload.multiplicity_of(id), 8);
        let report = workload.explain_at(OptimizeLevel::Full);
        assert_eq!(report.total_before(), 8);
        assert_eq!(report.total_after(), 4);
        assert!(report.epsilon_saved());
    }

    #[test]
    fn merged_workload_evaluates_bitwise_like_the_naive_plan() {
        let source = crate::edges::EdgeSource::new();
        let workload = triangle_workload_plan(source.plan());
        let bindings: PlanBindings = source.bind_graph(&toy_graph());
        let naive = workload.eval_opt(&bindings, &SequentialExecutor, OptimizeLevel::None);
        let optimized = workload.eval_opt(&bindings, &SequentialExecutor, OptimizeLevel::Full);
        assert_eq!(naive.len(), optimized.len());
        for (record, weight) in naive.iter() {
            assert_eq!(weight.to_bits(), optimized.weight(record).to_bits());
        }
    }

    #[test]
    fn degree_workload_query_charges_one_epsilon_when_optimized() {
        let graph_edges = GraphEdges::new(&toy_graph(), PrivacyBudget::new(1.0));
        let q = degree_workload_query(&graph_edges.queryable())
            .with_optimize_level(OptimizeLevel::Full);
        assert_eq!(q.multiplicity_of(graph_edges.protected().id()), 1);
        let mut rng = StdRng::seed_from_u64(7);
        q.noisy_count(0.25, &mut rng).unwrap();
        assert!((graph_edges.budget().spent() - 0.25).abs() < 1e-12);

        // The unoptimized baseline pays for both requests.
        let baseline = degree_workload_query(&graph_edges.queryable())
            .with_optimize_level(OptimizeLevel::None);
        assert_eq!(baseline.multiplicity_of(graph_edges.protected().id()), 2);
    }

    #[test]
    fn merge_requests_folds_many_plans() {
        let edges = Plan::<Edge>::source();
        let id = edges.input_id().unwrap();
        let merged = merge_requests((0..4).map(|_| degree_ccdf_plan(&edges)));
        assert_eq!(merged.multiplicity_of(id), 4);
        // All four requests are identical: the whole fold collapses to one chain.
        assert_eq!(
            merged.optimize_at(OptimizeLevel::Full).multiplicity_of(id),
            1
        );
    }
}
