//! Triangles-by-Degree (TbD): Section 3.3 and Theorem 2.
//!
//! For every triangle on vertices of degrees `(d_a, d_b, d_c)` the query adds weight
//! `3 / (d_a² + d_b² + d_c²)` to the sorted degree triple. The edges dataset is used 9
//! times (3 path rotations, each built from paths + degrees), so measuring with ε charges
//! `9ε` — the cost quoted for the Figure 3 experiments.

use rand::Rng;

use wpinq::{Expr, NoisyCounts, Plan, Queryable, ReduceSpec, WpinqError};

use crate::edges::Edge;

/// Length-two paths `(a, b, c)` (with `a ≠ c`) as a plan, each weighted `1 / (2·d_b)`.
///
/// Privacy multiplicity: 2 (a self-join of the edges).
pub fn length_two_paths_plan(edges: &Plan<Edge>) -> Plan<(u32, u32, u32)> {
    edges
        .join(edges, |x| x.1, |y| y.0, |x, y| (x.0, x.1, y.1))
        .filter(|p| p.0 != p.2)
}

/// The degree lookup `(v, d_v)` at weight ½ as a plan, used by the triangle and square
/// queries.
///
/// Privacy multiplicity: 1. The optional bucketing divides the reported degree by `k`
/// (Section 5.2) without changing any weights.
pub fn degrees_plan(edges: &Plan<Edge>, bucket: u64) -> Plan<(u32, u64)> {
    assert!(bucket >= 1, "bucket size must be at least 1");
    edges.group_by(|e| e.0, move |group| group.len() as u64 / bucket)
}

/// Length-two paths annotated with the degree of their middle vertex as a plan:
/// `((a, b, c), d_b)` with weight `1 / (2·d_b²)`.
///
/// Privacy multiplicity: 3.
pub fn paths_with_middle_degree_plan(
    edges: &Plan<Edge>,
    bucket: u64,
) -> Plan<((u32, u32, u32), u64)> {
    let paths = length_two_paths_plan(edges);
    let degrees = degrees_plan(edges, bucket);
    paths.join(&degrees, |p| p.1, |d| d.0, |p, d| (*p, d.1))
}

/// The Triangles-by-Degree query as a plan (degrees bucketed by `k`): sorted degree
/// triples `(d₁ ≤ d₂ ≤ d₃)`, where each triangle on degrees `(d_a, d_b, d_c)` contributes
/// weight `3 / (d_a² + d_b² + d_c²)`.
///
/// This one definition drives the batch measurement ([`tbd_query_bucketed`]), the
/// incremental MCMC scorer, and the 9ε accounting. Privacy multiplicity: 9.
pub fn tbd_plan(edges: &Plan<Edge>, bucket: u64) -> Plan<(u64, u64, u64)> {
    let abc = paths_with_middle_degree_plan(edges, bucket);
    // Rotating the path leaves the weight untouched; the attached degree stays with the
    // original middle vertex, which is the first vertex of the rotated path.
    let bca = abc.select(|(p, d)| ((p.1, p.2, p.0), *d));
    let cab = bca.select(|(p, d)| ((p.1, p.2, p.0), *d));
    let tris = abc
        .join(&bca, |x| x.0, |y| y.0, |x, y| (x.0, x.1, y.1))
        .join(&cab, |x| x.0, |y| y.0, |x, y| (y.1, x.1, x.2));
    tris.select(|(d1, d2, d3)| {
        let mut t = [*d1, *d2, *d3];
        t.sort_unstable();
        (t[0], t[1], t[2])
    })
}

/// A length-two path record with the middle vertex's (bucketed) degree attached.
type AnnotatedPath = ((u32, u32, u32), u64);
/// A path triple with two attached degrees (intermediate of the triangle join).
type PathTwoDegrees = ((u32, u32, u32), u64, u64);

/// [`length_two_paths_plan`] in expression form (serializable; byte-identical releases).
pub fn length_two_paths_plan_expr(edges: &Plan<Edge>) -> Plan<(u32, u32, u32)> {
    let x = Expr::input();
    edges
        .join_expr::<Edge, u32, (u32, u32, u32)>(
            edges,
            x.clone().field(1),
            x.clone().field(0),
            Expr::tuple(vec![
                x.clone().field(0).field(0),
                x.clone().field(0).field(1),
                x.clone().field(1).field(1),
            ]),
        )
        .filter_expr(x.clone().field(0).ne(x.field(2)))
}

/// [`degrees_plan`] in expression form (serializable; byte-identical releases).
///
/// Unlike the closure form — whose bucket parameter is captured state the optimizer
/// cannot see, so two separately built `degrees_plan(·, k)` calls never unify — the
/// expression form's reducer carries the bucket as a constant in its canonical
/// serialization, so equal-bucket degree lookups hash-cons together across call sites
/// and processes.
pub fn degrees_plan_expr(edges: &Plan<Edge>, bucket: u64) -> Plan<(u32, u64)> {
    assert!(bucket >= 1, "bucket size must be at least 1");
    edges.group_by_expr::<u32, u64>(
        Expr::input().field(0),
        ReduceSpec::CountThen(Expr::input().div(Expr::u64(bucket))),
    )
}

/// [`paths_with_middle_degree_plan`] in expression form (serializable).
pub fn paths_with_middle_degree_plan_expr(edges: &Plan<Edge>, bucket: u64) -> Plan<AnnotatedPath> {
    let paths = length_two_paths_plan_expr(edges);
    let degrees = degrees_plan_expr(edges, bucket);
    let x = Expr::input();
    paths.join_expr::<(u32, u64), u32, AnnotatedPath>(
        &degrees,
        x.clone().field(1),
        x.clone().field(0),
        Expr::tuple(vec![x.clone().field(0), x.field(1).field(1)]),
    )
}

/// [`tbd_plan`] in expression form: the full 9-multiplicity Triangles-by-Degree query as
/// pure data — three rotations, two triangle joins, and the sorted-triple projection via
/// the expression language's `sort` — shippable to a measurement service.
pub fn tbd_plan_expr(edges: &Plan<Edge>, bucket: u64) -> Plan<(u64, u64, u64)> {
    let x = Expr::input();
    let rotate = Expr::tuple(vec![
        Expr::tuple(vec![
            x.clone().field(0).field(1),
            x.clone().field(0).field(2),
            x.clone().field(0).field(0),
        ]),
        x.clone().field(1),
    ]);
    let abc = paths_with_middle_degree_plan_expr(edges, bucket);
    let bca = abc.select_expr::<AnnotatedPath>(rotate.clone());
    let cab = bca.select_expr::<AnnotatedPath>(rotate);
    let tris = abc
        .join_expr::<AnnotatedPath, (u32, u32, u32), PathTwoDegrees>(
            &bca,
            x.clone().field(0),
            x.clone().field(0),
            Expr::tuple(vec![
                x.clone().field(0).field(0),
                x.clone().field(0).field(1),
                x.clone().field(1).field(1),
            ]),
        )
        .join_expr::<AnnotatedPath, (u32, u32, u32), (u64, u64, u64)>(
            &cab,
            x.clone().field(0),
            x.clone().field(0),
            Expr::tuple(vec![
                x.clone().field(1).field(1),
                x.clone().field(0).field(1),
                x.clone().field(0).field(2),
            ]),
        );
    tris.select_expr::<(u64, u64, u64)>(x.sort())
}

/// [`length_two_paths_plan`] applied to a protected edge dataset.
pub fn length_two_paths_query(edges: &Queryable<Edge>) -> Queryable<(u32, u32, u32)> {
    edges.apply(length_two_paths_plan)
}

/// [`degrees_plan`] applied to a protected edge dataset.
pub fn degrees_query(edges: &Queryable<Edge>, bucket: u64) -> Queryable<(u32, u64)> {
    edges.apply(|plan| degrees_plan(plan, bucket))
}

/// [`paths_with_middle_degree_plan`] applied to a protected edge dataset.
pub fn paths_with_middle_degree_query(
    edges: &Queryable<Edge>,
    bucket: u64,
) -> Queryable<((u32, u32, u32), u64)> {
    edges.apply(|plan| paths_with_middle_degree_plan(plan, bucket))
}

/// The Triangles-by-Degree query over a protected edge dataset.
///
/// Privacy multiplicity: 9.
pub fn tbd_query(edges: &Queryable<Edge>) -> Queryable<(u64, u64, u64)> {
    tbd_query_bucketed(edges, 1)
}

/// [`tbd_query`] with degrees bucketed by `k` (each reported degree is `d / k`), the
/// remedy Section 5.2 applies so that low-signal degree triples pool their weight.
pub fn tbd_query_bucketed(edges: &Queryable<Edge>, bucket: u64) -> Queryable<(u64, u64, u64)> {
    edges.apply(|plan| tbd_plan(plan, bucket))
}

/// The weight one triangle on degrees `(x, y, z)` contributes to its sorted degree triple:
/// `3 / (x² + y² + z²)` (equation (4) summed over the six path discoveries).
pub fn tbd_record_weight(x: u64, y: u64, z: u64) -> f64 {
    3.0 / ((x * x + y * y + z * z) as f64)
}

/// The noise amplitude Theorem 2 attaches to the released count for degree triple
/// `(x, y, z)`: `6·(x² + y² + z²) / ε`.
pub fn theorem2_noise_amplitude(x: u64, y: u64, z: u64, epsilon: f64) -> f64 {
    6.0 * ((x * x + y * y + z * z) as f64) / epsilon
}

/// A released TbD measurement (optionally bucketed).
#[derive(Debug)]
pub struct TbdMeasurement {
    counts: NoisyCounts<(u64, u64, u64)>,
    epsilon: f64,
    bucket: u64,
}

impl TbdMeasurement {
    /// Measures the (bucketed) TbD with `NoisyCount(·, ε)`, charging `9ε`.
    pub fn measure<R: Rng + ?Sized>(
        edges: &Queryable<Edge>,
        epsilon: f64,
        bucket: u64,
        rng: &mut R,
    ) -> Result<Self, WpinqError> {
        let counts = tbd_query_bucketed(edges, bucket).noisy_count(epsilon, rng)?;
        Ok(TbdMeasurement {
            counts,
            epsilon,
            bucket,
        })
    }

    /// The ε of the measurement.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The bucket size the degrees were divided by.
    pub fn bucket(&self) -> u64 {
        self.bucket
    }

    /// The noisy weight observed for a (bucketed) sorted degree triple.
    pub fn raw(&self, triple: (u64, u64, u64)) -> f64 {
        self.counts.get(&triple)
    }

    /// For unbucketed measurements, the estimated number of triangles with the given sorted
    /// degree triple, obtained by dividing the raw weight by [`tbd_record_weight`].
    pub fn estimated_triangles(&self, triple: (u64, u64, u64)) -> f64 {
        self.raw(triple) / tbd_record_weight(triple.0, triple.1, triple.2)
    }

    /// The underlying noisy counts, e.g. for feeding the MCMC scorer.
    pub fn counts(&self) -> &NoisyCounts<(u64, u64, u64)> {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::GraphEdges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wpinq::PrivacyBudget;
    use wpinq_graph::{stats, Graph};

    fn triangle_with_tail() -> Graph {
        Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    fn complete4() -> Graph {
        Graph::from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn paths_have_weight_one_over_twice_middle_degree() {
        let g = triangle_with_tail();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let paths = length_two_paths_query(&edges.queryable());
        // Path (0, 1, 2): middle vertex 1 has degree 2 → weight 1/4.
        assert!((paths.inspect().weight(&(0, 1, 2)) - 0.25).abs() < 1e-9);
        // Path (0, 2, 3): middle vertex 2 has degree 3 → weight 1/6.
        assert!((paths.inspect().weight(&(0, 2, 3)) - 1.0 / 6.0).abs() < 1e-9);
        // Length-two cycles are filtered out.
        assert_eq!(paths.inspect().weight(&(0, 1, 0)), 0.0);
        assert_eq!(paths.max_multiplicity(), 2);
    }

    #[test]
    fn annotated_paths_have_weight_one_over_two_degree_squared() {
        let g = triangle_with_tail();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let abc = paths_with_middle_degree_query(&edges.queryable(), 1);
        assert!((abc.inspect().weight(&((0, 1, 2), 2)) - 1.0 / 8.0).abs() < 1e-9);
        assert!((abc.inspect().weight(&((0, 2, 3), 3)) - 1.0 / 18.0).abs() < 1e-9);
        assert_eq!(abc.max_multiplicity(), 3);
    }

    #[test]
    fn tbd_weight_matches_equation_four_on_triangle_with_tail() {
        let g = triangle_with_tail();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let tbd = tbd_query(&edges.queryable());
        // One triangle with degrees (2, 2, 3): weight 3 / (4 + 4 + 9) = 3/17.
        let w = tbd.inspect().weight(&(2, 2, 3));
        assert!((w - tbd_record_weight(2, 2, 3)).abs() < 1e-9, "weight {w}");
        // No other degree triple receives weight.
        assert_eq!(tbd.inspect().len(), 1);
    }

    #[test]
    fn tbd_weight_matches_on_complete_graph() {
        let g = complete4();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let tbd = tbd_query(&edges.queryable());
        // Four triangles, all with degrees (3, 3, 3): total weight 4 · 3/27 = 4/9.
        let w = tbd.inspect().weight(&(3, 3, 3));
        assert!(
            (w - 4.0 * tbd_record_weight(3, 3, 3)).abs() < 1e-9,
            "weight {w}"
        );
    }

    #[test]
    fn tbd_matches_exact_triangles_by_degree_on_random_graph() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = wpinq_graph::generators::powerlaw_cluster(60, 3, 0.6, &mut rng);
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let tbd = tbd_query(&edges.queryable());
        let exact = stats::triangles_by_degree(&g);
        for ((x, y, z), count) in &exact {
            let expected = *count as f64 * tbd_record_weight(*x as u64, *y as u64, *z as u64);
            let got = tbd.inspect().weight(&(*x as u64, *y as u64, *z as u64));
            assert!(
                (got - expected).abs() < 1e-6,
                "triple ({x},{y},{z}): got {got}, want {expected}"
            );
        }
        // Total number of weighted records matches the number of distinct triples.
        assert_eq!(tbd.inspect().len(), exact.len());
    }

    #[test]
    fn tbd_expr_form_matches_closure_form_bitwise() {
        use wpinq::plan::PlanBindings;
        let mut rng = StdRng::seed_from_u64(17);
        let g = wpinq_graph::generators::powerlaw_cluster(30, 3, 0.5, &mut rng);
        let source = Plan::<Edge>::source_expr("edges");
        let mut bindings = PlanBindings::new();
        bindings.bind(&source, crate::edges::symmetric_edge_dataset(&g));
        for bucket in [1u64, 2] {
            let a = tbd_plan(&source, bucket).eval(&bindings);
            let b = tbd_plan_expr(&source, bucket).eval(&bindings);
            assert_eq!(a.len(), b.len(), "bucket {bucket}");
            for (record, weight) in a.iter() {
                assert_eq!(
                    weight.to_bits(),
                    b.weight(record).to_bits(),
                    "bucket {bucket}, triple {record:?}"
                );
            }
        }
        // The expr form serializes; its multiplicity is the quoted 9ε.
        let expr_plan = tbd_plan_expr(&source, 1);
        assert!(expr_plan.to_spec().is_some());
        assert_eq!(
            expr_plan.multiplicity_of(source.input_id().unwrap()),
            9,
            "TbD uses the edges source nine times"
        );
    }

    #[test]
    fn expr_degree_lookups_unify_across_call_sites_unlike_closures() {
        // Join-key/payload equivalence detection: the closure form's bucket is captured
        // state (opaque — two builds never unify); the expr form's reducer serializes the
        // bucket, so two separately built degree lookups hash-cons onto one subplan and
        // the idempotent-union collapse halves the charged multiplicity.
        use wpinq::plan::OptimizeLevel;
        let source = Plan::<Edge>::source_expr("edges");
        let id = source.input_id().unwrap();

        let closure_merged = degrees_plan(&source, 2).union(&degrees_plan(&source, 2));
        assert_eq!(
            closure_merged
                .optimize_at(OptimizeLevel::Full)
                .multiplicity_of(id),
            2,
            "opaque captured buckets cannot be proven equal"
        );

        let expr_merged = degrees_plan_expr(&source, 2).union(&degrees_plan_expr(&source, 2));
        assert_eq!(
            expr_merged
                .optimize_at(OptimizeLevel::Full)
                .multiplicity_of(id),
            1,
            "expression-built lookups with equal buckets unify and collapse"
        );
        // Different buckets must stay distinct.
        let mixed = degrees_plan_expr(&source, 2).union(&degrees_plan_expr(&source, 3));
        assert_eq!(
            mixed.optimize_at(OptimizeLevel::Full).multiplicity_of(id),
            2
        );
    }

    #[test]
    fn tbd_costs_nine_uses() {
        let g = triangle_with_tail();
        let edges = GraphEdges::new(&g, PrivacyBudget::new(1.0));
        let q = tbd_query(&edges.queryable());
        assert_eq!(q.multiplicity_of(edges.protected().id()), 9);
        let mut rng = StdRng::seed_from_u64(0);
        q.noisy_count(0.1, &mut rng).unwrap();
        assert!((edges.budget().spent() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn bucketing_pools_weight_into_coarser_triples() {
        let g = complete4();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let bucketed = tbd_query_bucketed(&edges.queryable(), 2);
        // Degrees 3 bucket to 1; the pooled weight equals the unbucketed total.
        let w = bucketed.inspect().weight(&(1, 1, 1));
        assert!((w - 4.0 * tbd_record_weight(3, 3, 3)).abs() < 1e-9);
        assert_eq!(bucketed.inspect().len(), 1);
    }

    #[test]
    fn estimated_triangles_recovers_truth_at_high_epsilon() {
        let g = complete4();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let mut rng = StdRng::seed_from_u64(2);
        let m = TbdMeasurement::measure(&edges.queryable(), 1e6, 1, &mut rng).unwrap();
        assert!((m.estimated_triangles((3, 3, 3)) - 4.0).abs() < 0.01);
        assert_eq!(m.bucket(), 1);
    }

    #[test]
    fn theorem2_amplitude_formula() {
        assert!((theorem2_noise_amplitude(1, 2, 3, 0.5) - 6.0 * 14.0 / 0.5).abs() < 1e-9);
        assert!(theorem2_noise_amplitude(10, 10, 10, 1.0) > theorem2_noise_amplitude(2, 2, 2, 1.0));
    }
}
