//! From graphs to protected edge datasets.
//!
//! All analyses in the paper operate under *edge differential privacy*: the protected
//! dataset is the collection of edges, each with weight 1.0, and the platform masks the
//! presence or absence of any single edge. Following the experimental setup of Section 5,
//! the protected input is the **symmetric directed** edge set (both `(a, b)` and `(b, a)`
//! for every undirected edge), which is what makes the privacy multiplicities of the
//! queries come out to the costs quoted in the experiments (degree 1ε, JDD 4ε, TbD 9ε,
//! SbD 12ε, TbI 4ε).

use wpinq::budget::BudgetHandle;
use wpinq::dataflow::{ShardedStream, Stream};
use wpinq::plan::{Plan, PlanBindings, ShardedStreamBindings, StreamBindings};
use wpinq::{Expr, PrivacyBudget, ProtectedDataset, Queryable, WeightedDataset};
use wpinq_graph::Graph;

/// A directed edge record: `(source, destination)`.
pub type Edge = (u32, u32);

/// The canonical dataset name the symmetric-directed-edges source carries on the wire
/// (what a measurement service registers the protected edge dataset under).
pub const EDGES_DATASET: &str = "edges";

/// The directed-edge-count query as a plan: one record `()` whose weight is the number
/// of directed edges (2·|E| over the symmetric dataset).
///
/// Privacy multiplicity: 1.
pub fn edge_count_plan(edges: &Plan<Edge>) -> Plan<()> {
    edges.select(|_| ())
}

/// [`edge_count_plan`] in expression form (serializable; byte-identical releases).
pub fn edge_count_plan_expr(edges: &Plan<Edge>) -> Plan<()> {
    edges.select_expr::<()>(Expr::unit())
}

/// The symmetric directed edge dataset of a graph: records `(a, b)` and `(b, a)` with
/// weight 1.0 for every undirected edge.
pub fn symmetric_edge_dataset(graph: &Graph) -> WeightedDataset<Edge> {
    WeightedDataset::from_records(graph.directed_edges())
}

/// The undirected edge dataset of a graph: one canonical `(min, max)` record per edge.
pub fn undirected_edge_dataset(graph: &Graph) -> WeightedDataset<Edge> {
    WeightedDataset::from_records(graph.edges())
}

/// The symmetric-directed-edges *source* of the paper's analyses, as a plan input.
///
/// Every query in this crate is a plan over one edge source; this helper owns that source
/// and knows how to bind it to either engine: a graph's materialised edge dataset for
/// batch evaluation, or a candidate graph's delta stream for incremental MCMC scoring.
/// Using one `EdgeSource` for both is what guarantees the released measurement and the
/// scorer run *the same query*.
pub struct EdgeSource {
    source: Plan<Edge>,
}

impl Default for EdgeSource {
    fn default() -> Self {
        EdgeSource::new()
    }
}

impl EdgeSource {
    /// Creates a fresh edge source.
    pub fn new() -> Self {
        EdgeSource {
            source: Plan::source(),
        }
    }

    /// Creates a fresh **named** edge source (the [`EDGES_DATASET`] wire identity):
    /// expression-form queries over it serialize to complete, shippable
    /// [`PlanSpec`](wpinq::PlanSpec)s that a measurement service resolves by name.
    pub fn named() -> Self {
        EdgeSource {
            source: Plan::source_expr(EDGES_DATASET),
        }
    }

    /// The source plan, to be passed to the analysis plan constructors.
    pub fn plan(&self) -> &Plan<Edge> {
        &self.source
    }

    /// Batch bindings mapping this source to `graph`'s symmetric directed edge dataset.
    pub fn bind_graph(&self, graph: &Graph) -> PlanBindings {
        self.bind_dataset(symmetric_edge_dataset(graph))
    }

    /// Batch bindings mapping this source to an explicit edge dataset.
    pub fn bind_dataset(&self, dataset: WeightedDataset<Edge>) -> PlanBindings {
        let mut bindings = PlanBindings::new();
        bindings.bind(&self.source, dataset);
        bindings
    }

    /// Stream bindings mapping this source to a candidate's edge delta stream.
    pub fn bind_stream(&self, stream: Stream<Edge>) -> StreamBindings {
        let mut bindings = StreamBindings::new();
        bindings.bind(&self.source, stream.clone());
        bindings
    }

    /// Sharded-stream bindings mapping this source to a candidate's hash-partitioned
    /// edge delta stream (the sharded incremental engine).
    pub fn bind_sharded_stream(&self, stream: ShardedStream<Edge>) -> ShardedStreamBindings {
        let mut bindings = ShardedStreamBindings::new(stream.num_shards());
        bindings.bind(&self.source, stream);
        bindings
    }

    /// [`bind_sharded_stream`](Self::bind_sharded_stream) plus the expected number of
    /// directed edge records the stream will carry (e.g. 2·|E| of a candidate graph).
    /// The lowering calibrates each operator's inline/parallel cutover from this hint;
    /// it never affects results.
    pub fn bind_sharded_stream_sized(
        &self,
        stream: ShardedStream<Edge>,
        expected_edges: usize,
    ) -> ShardedStreamBindings {
        let mut bindings = ShardedStreamBindings::new(stream.num_shards());
        bindings.bind_with_size(&self.source, stream, expected_edges);
        bindings
    }
}

/// A graph's protected edge dataset together with its privacy budget — the starting point
/// of every analysis in this crate.
#[derive(Debug, Clone)]
pub struct GraphEdges {
    protected: ProtectedDataset<Edge>,
}

impl GraphEdges {
    /// Protects the symmetric directed edge set of `graph` behind a fresh budget.
    pub fn new(graph: &Graph, budget: PrivacyBudget) -> Self {
        GraphEdges {
            protected: ProtectedDataset::new(symmetric_edge_dataset(graph), budget),
        }
    }

    /// Protects the edges behind an existing (shared) budget handle.
    pub fn with_handle(graph: &Graph, handle: BudgetHandle) -> Self {
        GraphEdges {
            protected: ProtectedDataset::with_handle(symmetric_edge_dataset(graph), handle),
        }
    }

    /// The underlying protected dataset.
    pub fn protected(&self) -> &ProtectedDataset<Edge> {
        &self.protected
    }

    /// The budget handle shared by all queries against this graph.
    pub fn budget(&self) -> &BudgetHandle {
        self.protected.budget()
    }

    /// Starts a query over the protected edges.
    pub fn queryable(&self) -> Queryable<Edge> {
        self.protected.queryable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_graph() -> Graph {
        Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn symmetric_dataset_has_two_records_per_edge() {
        let g = toy_graph();
        let d = symmetric_edge_dataset(&g);
        assert_eq!(d.len(), 2 * g.num_edges());
        assert_eq!(d.weight(&(0, 1)), 1.0);
        assert_eq!(d.weight(&(1, 0)), 1.0);
        assert_eq!(d.weight(&(3, 0)), 0.0);
    }

    #[test]
    fn undirected_dataset_has_one_record_per_edge() {
        let g = toy_graph();
        let d = undirected_edge_dataset(&g);
        assert_eq!(d.len(), g.num_edges());
        assert_eq!(d.weight(&(0, 1)), 1.0);
        assert_eq!(d.weight(&(1, 0)), 0.0);
    }

    #[test]
    fn edge_source_binds_both_engines_to_the_same_query() {
        use crate::degree::degree_ccdf_plan;
        use wpinq::dataflow::DataflowInput;

        let g = toy_graph();
        let source = EdgeSource::new();
        let ccdf = degree_ccdf_plan(source.plan());

        // Batch: evaluate over the graph's materialised edges.
        let batch = ccdf.eval(&source.bind_graph(&g));

        // Incremental: lower onto a delta stream and load the same edges.
        let (input, stream) = DataflowInput::new();
        let collected = ccdf.lower(&source.bind_stream(stream)).collect();
        input.push_dataset(&symmetric_edge_dataset(&g));

        assert!(collected.snapshot().approx_eq(&batch, 1e-9));
        assert_eq!(ccdf.multiplicity_of(source.plan().input_id().unwrap()), 1);
    }

    #[test]
    fn edge_count_forms_agree_and_expr_serializes() {
        let g = toy_graph();
        let source = EdgeSource::named();
        let bindings = source.bind_graph(&g);
        let a = edge_count_plan(source.plan()).eval(&bindings);
        let b = edge_count_plan_expr(source.plan()).eval(&bindings);
        assert_eq!(a.weight(&()).to_bits(), b.weight(&()).to_bits());
        assert_eq!(a.weight(&()), 2.0 * g.num_edges() as f64);
        let spec = edge_count_plan_expr(source.plan()).to_spec().unwrap();
        assert_eq!(spec.sources()[0].0, EDGES_DATASET);
        // The closure form over the same named source does not serialize.
        assert!(edge_count_plan(source.plan()).to_spec().is_none());
    }

    #[test]
    fn graph_edges_tracks_budget() {
        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::new(1.0));
        assert_eq!(edges.budget().spent(), 0.0);
        let mut rng = rand::rngs::mock::StepRng::new(1, 1);
        // A plain degree query uses the source once.
        let q = edges.queryable().select(|e| e.0);
        q.noisy_count(0.25, &mut rng).unwrap();
        assert!((edges.budget().spent() - 0.25).abs() < 1e-12);
    }
}
