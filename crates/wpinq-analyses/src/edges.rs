//! From graphs to protected edge datasets.
//!
//! All analyses in the paper operate under *edge differential privacy*: the protected
//! dataset is the collection of edges, each with weight 1.0, and the platform masks the
//! presence or absence of any single edge. Following the experimental setup of Section 5,
//! the protected input is the **symmetric directed** edge set (both `(a, b)` and `(b, a)`
//! for every undirected edge), which is what makes the privacy multiplicities of the
//! queries come out to the costs quoted in the experiments (degree 1ε, JDD 4ε, TbD 9ε,
//! SbD 12ε, TbI 4ε).

use wpinq::budget::BudgetHandle;
use wpinq::{PrivacyBudget, ProtectedDataset, Queryable, WeightedDataset};
use wpinq_graph::Graph;

/// A directed edge record: `(source, destination)`.
pub type Edge = (u32, u32);

/// The symmetric directed edge dataset of a graph: records `(a, b)` and `(b, a)` with
/// weight 1.0 for every undirected edge.
pub fn symmetric_edge_dataset(graph: &Graph) -> WeightedDataset<Edge> {
    WeightedDataset::from_records(graph.directed_edges())
}

/// The undirected edge dataset of a graph: one canonical `(min, max)` record per edge.
pub fn undirected_edge_dataset(graph: &Graph) -> WeightedDataset<Edge> {
    WeightedDataset::from_records(graph.edges())
}

/// A graph's protected edge dataset together with its privacy budget — the starting point
/// of every analysis in this crate.
#[derive(Debug, Clone)]
pub struct GraphEdges {
    protected: ProtectedDataset<Edge>,
}

impl GraphEdges {
    /// Protects the symmetric directed edge set of `graph` behind a fresh budget.
    pub fn new(graph: &Graph, budget: PrivacyBudget) -> Self {
        GraphEdges {
            protected: ProtectedDataset::new(symmetric_edge_dataset(graph), budget),
        }
    }

    /// Protects the edges behind an existing (shared) budget handle.
    pub fn with_handle(graph: &Graph, handle: BudgetHandle) -> Self {
        GraphEdges {
            protected: ProtectedDataset::with_handle(symmetric_edge_dataset(graph), handle),
        }
    }

    /// The underlying protected dataset.
    pub fn protected(&self) -> &ProtectedDataset<Edge> {
        &self.protected
    }

    /// The budget handle shared by all queries against this graph.
    pub fn budget(&self) -> &BudgetHandle {
        self.protected.budget()
    }

    /// Starts a query over the protected edges.
    pub fn queryable(&self) -> Queryable<Edge> {
        self.protected.queryable()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_graph() -> Graph {
        Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn symmetric_dataset_has_two_records_per_edge() {
        let g = toy_graph();
        let d = symmetric_edge_dataset(&g);
        assert_eq!(d.len(), 2 * g.num_edges());
        assert_eq!(d.weight(&(0, 1)), 1.0);
        assert_eq!(d.weight(&(1, 0)), 1.0);
        assert_eq!(d.weight(&(3, 0)), 0.0);
    }

    #[test]
    fn undirected_dataset_has_one_record_per_edge() {
        let g = toy_graph();
        let d = undirected_edge_dataset(&g);
        assert_eq!(d.len(), g.num_edges());
        assert_eq!(d.weight(&(0, 1)), 1.0);
        assert_eq!(d.weight(&(1, 0)), 0.0);
    }

    #[test]
    fn graph_edges_tracks_budget() {
        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::new(1.0));
        assert_eq!(edges.budget().spent(), 0.0);
        let mut rng = rand::rngs::mock::StepRng::new(1, 1);
        // A plain degree query uses the source once.
        let q = edges.queryable().select(|e| e.0);
        q.noisy_count(0.25, &mut rng).unwrap();
        assert!((edges.budget().spent() - 0.25).abs() < 1e-12);
    }
}
