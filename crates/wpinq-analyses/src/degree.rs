//! Degree CCDF and degree sequence queries (Section 3.1).
//!
//! The degree CCDF query transforms edges → source names (weight d_a per name) → unit
//! slices → slice indices, so record `i` carries weight "number of nodes with degree > i".
//! Shaving and re-indexing a second time transposes the axes and yields the non-increasing
//! degree sequence. Neither query reveals the number of nodes, fixing the issue the paper
//! identifies in Hay et al.'s requirement that |V| be public.

use rand::Rng;

use wpinq::{Expr, NoisyCounts, Plan, Queryable, WpinqError};

use crate::edges::Edge;

/// The degree-CCDF query as a plan: record `i` has weight `#{v : d_v > i}`.
///
/// This single definition serves batch measurement (via [`degree_ccdf_query`]),
/// incremental MCMC scoring (lowered onto a candidate edge stream), and privacy
/// accounting. Privacy multiplicity: 1 (the edges source is referenced once).
pub fn degree_ccdf_plan(edges: &Plan<Edge>) -> Plan<u64> {
    edges.select(|e| e.0).shave_const(1.0).select(|(_, i)| *i)
}

/// [`degree_ccdf_plan`] in expression form: the same query (byte-identical releases for
/// the same seed), but serializable to a [`PlanSpec`](wpinq::PlanSpec) and shippable to
/// a measurement service.
pub fn degree_ccdf_plan_expr(edges: &Plan<Edge>) -> Plan<u64> {
    edges
        .select_expr::<u32>(Expr::input().field(0))
        .shave_const(1.0)
        .select_expr::<u64>(Expr::input().field(1))
}

/// The degree-sequence query as a plan: record `j` has weight "degree of the node with
/// rank `j`" (non-increasing), the CCDF transposed by a second Shave/Select pass.
///
/// Privacy multiplicity: 1.
pub fn degree_sequence_plan(edges: &Plan<Edge>) -> Plan<u64> {
    degree_ccdf_plan(edges).shave_const(1.0).select(|(_, i)| *i)
}

/// [`degree_sequence_plan`] in expression form (serializable; byte-identical releases).
pub fn degree_sequence_plan_expr(edges: &Plan<Edge>) -> Plan<u64> {
    degree_ccdf_plan_expr(edges)
        .shave_const(1.0)
        .select_expr::<u64>(Expr::input().field(1))
}

/// [`degree_ccdf_plan`] applied to a protected edge dataset.
pub fn degree_ccdf_query(edges: &Queryable<Edge>) -> Queryable<u64> {
    edges.apply(degree_ccdf_plan)
}

/// [`degree_sequence_plan`] applied to a protected edge dataset.
pub fn degree_sequence_query(edges: &Queryable<Edge>) -> Queryable<u64> {
    edges.apply(degree_sequence_plan)
}

/// Released degree measurements: the noisy CCDF and noisy degree sequence, both taken at
/// the same ε (so the pair costs 2ε of the edges' budget), plus a noisy node count.
///
/// These are the measurements Phase 1 of the synthesis workflow consumes (Section 5.1:
/// "degree sequence, degree CCDF, and count of number of nodes", privacy cost 3ε).
#[derive(Debug)]
pub struct DegreeMeasurements {
    /// Noisy CCDF counts, indexed by degree threshold.
    pub ccdf: NoisyCounts<u64>,
    /// Noisy degree-sequence counts, indexed by rank.
    pub sequence: NoisyCounts<u64>,
    /// Noisy number of nodes (measured at weight ½ per node, already rescaled to nodes).
    pub node_count: f64,
    /// The ε used for each of the three measurements.
    pub epsilon: f64,
}

impl DegreeMeasurements {
    /// Takes the three Phase-1 measurements, charging `3ε` in total.
    pub fn measure<R: Rng + ?Sized>(
        edges: &Queryable<Edge>,
        epsilon: f64,
        rng: &mut R,
    ) -> Result<Self, WpinqError> {
        let ccdf = degree_ccdf_query(edges).noisy_count(epsilon, rng)?;
        let sequence = degree_sequence_query(edges).noisy_count(epsilon, rng)?;
        let node_count_noisy = crate::nodes::node_count_query(edges).noisy_count(epsilon, rng)?;
        // Nodes carry weight ½ each (Section 2.8), so the unit count is doubled.
        let node_count = 2.0 * node_count_noisy.get(&());
        Ok(DegreeMeasurements {
            ccdf,
            sequence,
            node_count,
            epsilon,
        })
    }

    /// The noisy CCDF as a dense vector over thresholds `0..len`.
    pub fn ccdf_vector(&self, len: usize) -> Vec<f64> {
        (0..len as u64).map(|i| self.ccdf.get(&i)).collect()
    }

    /// The noisy degree sequence as a dense vector over ranks `0..len`.
    pub fn sequence_vector(&self, len: usize) -> Vec<f64> {
        (0..len as u64).map(|i| self.sequence.get(&i)).collect()
    }

    /// The estimated number of nodes, clamped to at least 1.
    pub fn estimated_nodes(&self) -> usize {
        self.node_count.round().max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::GraphEdges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wpinq::PrivacyBudget;
    use wpinq_graph::{stats, Graph};

    fn toy_graph() -> Graph {
        // Degrees: 3, 2, 3, 2 for nodes 0..4.
        Graph::from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)])
    }

    #[test]
    fn ccdf_query_weights_match_exact_ccdf() {
        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let q = degree_ccdf_query(&edges.queryable());
        let exact = stats::degree_ccdf(&g);
        for (i, count) in exact.iter().enumerate() {
            assert!(
                (q.inspect().weight(&(i as u64)) - *count as f64).abs() < 1e-9,
                "ccdf[{i}]"
            );
        }
        assert_eq!(q.inspect().len(), exact.len());
        assert_eq!(q.max_multiplicity(), 1);
    }

    #[test]
    fn degree_sequence_query_weights_match_exact_sequence() {
        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let q = degree_sequence_query(&edges.queryable());
        let exact = stats::degree_sequence(&g);
        for (rank, d) in exact.iter().enumerate() {
            assert!(
                (q.inspect().weight(&(rank as u64)) - *d as f64).abs() < 1e-9,
                "seq[{rank}] = {} want {d}",
                q.inspect().weight(&(rank as u64))
            );
        }
        assert_eq!(q.max_multiplicity(), 1);
    }

    #[test]
    fn expr_form_matches_closure_form_and_serializes() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use wpinq::plan::{plan_from_spec, OptimizeLevel};
        use wpinq::plan::{PlanBindings, SequentialExecutor};

        let g = toy_graph();
        let source = Plan::<Edge>::source_expr("edges");
        let closure_plan = degree_ccdf_plan(&source);
        let expr_plan = degree_ccdf_plan_expr(&source);
        let mut bindings = PlanBindings::new();
        bindings.bind(&source, crate::edges::symmetric_edge_dataset(&g));

        // Same weights, bitwise.
        let a = closure_plan.eval(&bindings);
        let b = expr_plan.eval(&bindings);
        assert_eq!(a.len(), b.len());
        for (record, weight) in a.iter() {
            assert_eq!(weight.to_bits(), b.weight(record).to_bits());
        }

        // The closure form cannot serialize; the expr form round-trips and evaluates to
        // the same data dynamically.
        assert!(closure_plan.to_spec().is_none());
        let spec = expr_plan.to_spec().expect("expr plan serializes");
        let reparsed = wpinq::PlanSpec::from_json(&spec.to_json_string()).unwrap();
        assert_eq!(reparsed, spec);
        let dyn_plan = plan_from_spec(&reparsed).unwrap();
        let mut dyn_bindings = PlanBindings::new();
        dyn_bindings.bind(
            &dyn_plan.sources[0].plan,
            wpinq::plan::dataset_to_values(&crate::edges::symmetric_edge_dataset(&g)),
        );
        let seq_plan = degree_sequence_plan_expr(&source);
        assert!(seq_plan.to_spec().is_some());
        let dynamic =
            dyn_plan
                .plan
                .eval_opt(&dyn_bindings, &SequentialExecutor, OptimizeLevel::Full);
        let mut rng_a = StdRng::seed_from_u64(5);
        let mut rng_b = StdRng::seed_from_u64(5);
        let typed_release = wpinq::NoisyCounts::measure(&b, 1.0, &mut rng_a);
        let dyn_release = wpinq::NoisyCounts::measure(&dynamic, 1.0, &mut rng_b);
        for (record, value) in typed_release.sorted_observed() {
            use wpinq::ExprRecord;
            assert_eq!(
                value.to_bits(),
                dyn_release.get(&record.to_value()).to_bits(),
                "dynamic release differs at {record:?}"
            );
        }
    }

    #[test]
    fn measurements_cost_three_epsilon() {
        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::new(1.0));
        let mut rng = StdRng::seed_from_u64(0);
        let m = DegreeMeasurements::measure(&edges.queryable(), 0.1, &mut rng).unwrap();
        assert!((edges.budget().spent() - 0.3).abs() < 1e-9);
        assert_eq!(m.epsilon, 0.1);
    }

    #[test]
    fn high_epsilon_measurements_recover_truth() {
        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let mut rng = StdRng::seed_from_u64(3);
        let m = DegreeMeasurements::measure(&edges.queryable(), 1e5, &mut rng).unwrap();
        let ccdf = m.ccdf_vector(3);
        let exact: Vec<f64> = stats::degree_ccdf(&g).iter().map(|c| *c as f64).collect();
        for (got, want) in ccdf.iter().zip(exact.iter()) {
            assert!((got - want).abs() < 0.01);
        }
        let seq = m.sequence_vector(4);
        let exact_seq: Vec<f64> = stats::degree_sequence(&g)
            .iter()
            .map(|d| *d as f64)
            .collect();
        for (got, want) in seq.iter().zip(exact_seq.iter()) {
            assert!((got - want).abs() < 0.01);
        }
        assert_eq!(m.estimated_nodes(), 4);
    }
}
