//! Post-processing of noisy degree measurements (Section 3.1).
//!
//! Two estimators are provided:
//!
//! * [`pava_non_increasing`] — isotonic regression by the Pool-Adjacent-Violators Algorithm,
//!   the post-processing Hay et al. apply to a noisy degree sequence.
//! * [`fit_degree_sequence`] — the paper's joint fit: view a non-increasing degree sequence
//!   as a monotone staircase path on the integer grid and find the lowest-cost path that
//!   simultaneously agrees with the noisy "vertical" degree-sequence measurements and the
//!   noisy "horizontal" CCDF measurements (equation (2)).

/// Isotonic regression onto non-increasing sequences (Pool Adjacent Violators).
///
/// Returns the least-squares non-increasing fit to `values`.
pub fn pava_non_increasing(values: &[f64]) -> Vec<f64> {
    // Classic PAVA on the reversed (non-decreasing) problem: maintain blocks of (sum, count)
    // and merge while the monotonicity constraint is violated.
    let mut blocks: Vec<(f64, usize)> = Vec::with_capacity(values.len());
    for &v in values {
        blocks.push((v, 1));
        while blocks.len() >= 2 {
            let last = blocks[blocks.len() - 1];
            let prev = blocks[blocks.len() - 2];
            // Non-increasing fit: a later block's mean must not exceed an earlier block's.
            if last.0 / last.1 as f64 > prev.0 / prev.1 as f64 {
                blocks.pop();
                let merged = (prev.0 + last.0, prev.1 + last.1);
                let idx = blocks.len() - 1;
                blocks[idx] = merged;
            } else {
                break;
            }
        }
    }
    let mut out = Vec::with_capacity(values.len());
    for (sum, count) in blocks {
        let mean = sum / count as f64;
        out.extend(std::iter::repeat_n(mean, count));
    }
    out
}

/// The paper's joint degree-sequence fit (Section 3.1).
///
/// `seq_noisy[x]` is the noisy "vertical" measurement of the degree of the rank-`x` node
/// and `ccdf_noisy[y]` the noisy "horizontal" measurement of the number of nodes with
/// degree > `y`. The fit finds the monotone staircase (a path from `(0, y_max)` to
/// `(x_max, 0)` taking only right/down steps) minimising
/// `Σ_{(x,y)∈P} |seq[x] − y| + |ccdf[y] − x|`, and returns the fitted (integer,
/// non-increasing) degree sequence `degree[x]`.
pub fn fit_degree_sequence(ccdf_noisy: &[f64], seq_noisy: &[f64]) -> Vec<usize> {
    let width = seq_noisy.len(); // number of ranks (x axis)
    let height = ccdf_noisy.len(); // number of degree thresholds (y axis)
    if width == 0 {
        return Vec::new();
    }
    let h = height + 1; // y takes values 0..=height

    // cost_right(x, y): committing rank x to degree y.
    let cost_right = |x: usize, y: usize| (seq_noisy[x] - y as f64).abs();
    // cost_down(x, y): asserting that exactly x nodes have degree > y − 1, i.e. stepping
    // from y down to y − 1 at horizontal position x.
    let cost_down = |x: usize, y: usize| (ccdf_noisy[y - 1] - x as f64).abs();

    // DP over the grid: dist[x][y] = cheapest cost to reach (x, y) from (0, height).
    let mut dist = vec![f64::INFINITY; (width + 1) * h];
    let idx = |x: usize, y: usize| x * h + y;
    dist[idx(0, height)] = 0.0;
    // `step[x][y]` remembers whether we arrived moving right (true) or down (false).
    let mut came_right = vec![false; (width + 1) * h];

    for x in 0..=width {
        for y in (0..=height).rev() {
            let d = dist[idx(x, y)];
            if !d.is_finite() {
                continue;
            }
            // Move right: commit rank x to degree y.
            if x < width {
                let nd = d + cost_right(x, y);
                if nd < dist[idx(x + 1, y)] {
                    dist[idx(x + 1, y)] = nd;
                    came_right[idx(x + 1, y)] = true;
                }
            }
            // Move down: finish the set of nodes with degree > y − 1 at count x.
            if y > 0 {
                let nd = d + cost_down(x, y);
                if nd < dist[idx(x, y - 1)] {
                    dist[idx(x, y - 1)] = nd;
                    came_right[idx(x, y - 1)] = false;
                }
            }
        }
    }

    // Trace back from (width, 0): every right-step at height y assigns degree y to one rank.
    let mut degrees = vec![0usize; width];
    let (mut x, mut y) = (width, 0usize);
    while x > 0 || y < height {
        if x > 0 && came_right[idx(x, y)] {
            x -= 1;
            degrees[x] = y;
        } else if y < height {
            y += 1;
        } else {
            break;
        }
    }
    degrees
}

/// Root-mean-square error between a fitted sequence and the true degree sequence, the
/// accuracy metric the degree experiments report.
pub fn sequence_rmse(fitted: &[usize], truth: &[usize]) -> f64 {
    let n = fitted.len().max(truth.len());
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        let f = fitted.get(i).copied().unwrap_or(0) as f64;
        let t = truth.get(i).copied().unwrap_or(0) as f64;
        total += (f - t) * (f - t);
    }
    (total / n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wpinq::noise::Laplace;
    use wpinq_graph::{generators, stats};

    #[test]
    fn pava_returns_input_when_already_monotone() {
        let v = vec![5.0, 4.0, 4.0, 1.0];
        assert_eq!(pava_non_increasing(&v), v);
    }

    #[test]
    fn pava_pools_violators() {
        let v = vec![3.0, 5.0, 1.0];
        let fit = pava_non_increasing(&v);
        assert_eq!(fit, vec![4.0, 4.0, 1.0]);
        // Output is non-increasing.
        assert!(fit.windows(2).all(|w| w[0] >= w[1] - 1e-12));
    }

    #[test]
    fn pava_on_constant_and_empty_inputs() {
        assert!(pava_non_increasing(&[]).is_empty());
        assert_eq!(pava_non_increasing(&[2.0, 2.0]), vec![2.0, 2.0]);
    }

    #[test]
    fn grid_fit_recovers_exact_sequence_from_noise_free_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = generators::barabasi_albert(200, 3, &mut rng);
        let truth = stats::degree_sequence(&g);
        let ccdf: Vec<f64> = stats::degree_ccdf(&g).iter().map(|c| *c as f64).collect();
        let seq: Vec<f64> = truth.iter().map(|d| *d as f64).collect();
        let fitted = fit_degree_sequence(&ccdf, &seq);
        assert_eq!(fitted.len(), truth.len());
        assert!(
            sequence_rmse(&fitted, &truth) < 1e-9,
            "noise-free fit should be exact"
        );
    }

    #[test]
    fn grid_fit_output_is_non_increasing_and_beats_raw_noise() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = generators::barabasi_albert(300, 3, &mut rng);
        let truth = stats::degree_sequence(&g);
        let epsilon = 0.5;
        let laplace = Laplace::from_epsilon(epsilon);
        let ccdf: Vec<f64> = stats::degree_ccdf(&g)
            .iter()
            .map(|c| *c as f64 + laplace.sample(&mut rng))
            .collect();
        let seq: Vec<f64> = truth
            .iter()
            .map(|d| *d as f64 + laplace.sample(&mut rng))
            .collect();
        let fitted = fit_degree_sequence(&ccdf, &seq);
        assert!(fitted.windows(2).all(|w| w[0] >= w[1]));

        let raw_rounded: Vec<usize> = seq.iter().map(|v| v.round().max(0.0) as usize).collect();
        let fit_err = sequence_rmse(&fitted, &truth);
        let raw_err = sequence_rmse(&raw_rounded, &truth);
        assert!(
            fit_err <= raw_err + 1e-9,
            "joint fit ({fit_err}) should not be worse than raw noisy sequence ({raw_err})"
        );
    }

    #[test]
    fn rmse_handles_length_mismatch() {
        assert!((sequence_rmse(&[2, 2], &[2]) - (4.0f64 / 2.0).sqrt()).abs() < 1e-12);
        assert_eq!(sequence_rmse(&[], &[]), 0.0);
    }
}
