//! Generalised motif queries (Section 3.5).
//!
//! The triangle and square analyses follow one pattern: build annotated paths, then `Join`
//! (or `Intersect`) rotations of them to tease out the target subgraph. This module exposes
//! the reusable pieces of that pattern: arbitrary-length path queries, cycle queries built
//! by closing a path, and star counts by degree.

use wpinq::Queryable;

use crate::edges::Edge;
use crate::triangles::length_two_paths_query;

/// Length-`k` paths (with `k ≥ 1` edges) as vertex vectors, built by repeatedly joining the
/// edge dataset onto the path frontier and discarding immediate backtracking
/// (`v_{i+1} ≠ v_{i-1}`). Weights shrink with the degrees of interior vertices exactly as
/// the stability rule dictates.
///
/// Privacy multiplicity: `k`.
pub fn length_k_paths_query(edges: &Queryable<Edge>, k: usize) -> Queryable<Vec<u32>> {
    assert!(k >= 1, "paths need at least one edge");
    let mut paths: Queryable<Vec<u32>> = edges.select(|&(a, b)| vec![a, b]);
    for _ in 1..k {
        paths = paths.join(
            edges,
            |p| *p.last().expect("paths are non-empty"),
            |e| e.0,
            |p, e| {
                let mut extended = p.clone();
                extended.push(e.1);
                extended
            },
        );
        // Discard immediate backtracking (… x, y, x …), mirroring the `a != c` filters in
        // the triangle and square queries.
        paths = paths.filter(|p| {
            let n = p.len();
            n < 3 || p[n - 3] != p[n - 1]
        });
    }
    paths
}

/// Cycles of length `k ∈ {3, 4}` detected by intersecting length-`(k−1)` paths with their
/// rotation, reported as a single aggregate record `()` (the TbI pattern generalised).
///
/// Privacy multiplicity: `2·(k − 1)`.
pub fn cycle_query(edges: &Queryable<Edge>, k: usize) -> Queryable<()> {
    assert!(
        (3..=4).contains(&k),
        "only triangle and square cycles are supported"
    );
    let paths: Queryable<Vec<u32>> = if k == 3 {
        length_two_paths_query(edges).select(|p| vec![p.0, p.1, p.2])
    } else {
        length_k_paths_query(edges, 3).filter(|p| p[0] != p[3])
    };
    let rotated = paths.select(|p| {
        let mut r = p[1..].to_vec();
        r.push(p[0]);
        r
    });
    rotated.intersect(&paths).select(|_| ())
}

/// `k`-star counts by centre degree: record `(d, #k-subsets)` for each vertex of degree
/// `d ≥ k`, produced with the `GroupBy` + `SelectMany` pattern and weight ½ per vertex.
///
/// Privacy multiplicity: 1.
pub fn star_count_query(edges: &Queryable<Edge>, k: u64) -> Queryable<(u64, u64)> {
    assert!(k >= 1);
    edges
        .group_by(|e| e.0, |group| group.len() as u64)
        .select(move |(_, d)| (*d, binomial(*d, k)))
        .filter(move |(d, _)| *d >= k)
}

fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u64 = 1;
    for i in 0..k {
        result = result * (n - i) / (i + 1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::GraphEdges;
    use crate::tbi::tbi_query;
    use wpinq::PrivacyBudget;
    use wpinq_graph::Graph;

    fn triangle_with_tail() -> Graph {
        Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn length_one_paths_are_just_edges() {
        let g = triangle_with_tail();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let p = length_k_paths_query(&edges.queryable(), 1);
        assert_eq!(p.inspect().len(), 2 * g.num_edges());
        assert_eq!(p.inspect().weight(&vec![0, 1]), 1.0);
        assert_eq!(p.max_multiplicity(), 1);
    }

    #[test]
    fn length_two_paths_match_the_dedicated_query() {
        let g = triangle_with_tail();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let generic = length_k_paths_query(&edges.queryable(), 2);
        let dedicated = length_two_paths_query(&edges.queryable());
        assert_eq!(generic.inspect().len(), dedicated.inspect().len());
        for (p, w) in dedicated.inspect().iter() {
            let as_vec = vec![p.0, p.1, p.2];
            assert!(
                (generic.inspect().weight(&as_vec) - w).abs() < 1e-9,
                "path {p:?}"
            );
        }
        assert_eq!(generic.max_multiplicity(), 2);
    }

    #[test]
    fn triangle_cycle_query_matches_tbi() {
        let g = triangle_with_tail();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let via_motif = cycle_query(&edges.queryable(), 3);
        let via_tbi = tbi_query(&edges.queryable());
        assert!((via_motif.inspect().weight(&()) - via_tbi.inspect().weight(&())).abs() < 1e-9);
        assert_eq!(via_motif.max_multiplicity(), 4);
    }

    #[test]
    fn square_cycle_query_detects_squares() {
        let square = Graph::from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]);
        let path = Graph::from_edges([(0, 1), (1, 2), (2, 3)]);
        let sq_edges = GraphEdges::new(&square, PrivacyBudget::unlimited());
        let path_edges = GraphEdges::new(&path, PrivacyBudget::unlimited());
        let on_square = cycle_query(&sq_edges.queryable(), 4);
        let on_path = cycle_query(&path_edges.queryable(), 4);
        assert!(on_square.inspect().weight(&()) > 0.0);
        assert_eq!(on_path.inspect().weight(&()), 0.0);
        assert_eq!(on_square.max_multiplicity(), 6);
    }

    #[test]
    fn star_counts_report_binomial_coefficients() {
        let g = Graph::from_edges([(0, 1), (0, 2), (0, 3), (0, 4)]);
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let stars = star_count_query(&edges.queryable(), 2);
        // Centre node 0 has degree 4 → C(4,2) = 6 two-stars; weight ½ from GroupBy.
        assert!((stars.inspect().weight(&(4, 6)) - 0.5).abs() < 1e-9);
        // Leaves have degree 1 < 2 and are filtered out.
        assert_eq!(stars.inspect().len(), 1);
    }

    #[test]
    fn binomial_helper() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(3, 0), 1);
        assert_eq!(binomial(2, 5), 0);
    }
}
