//! The joint degree distribution (JDD) query of Section 3.2.
//!
//! For every directed edge `(a, b)` the query produces the record `(d_a, d_b)` with weight
//! `1 / (2 + 2·d_a + 2·d_b)`. Dividing a released noisy count by that weight gives an
//! estimate of the number of edges incident on degrees `(d_a, d_b)` with noise proportional
//! to `2 + 2·d_a + 2·d_b` — the data-dependent noise level the paper contrasts with Sala et
//! al.'s bespoke `4·max(d_a, d_b)` analysis.

use std::collections::HashMap;

use rand::Rng;

use wpinq::{Expr, NoisyCounts, Plan, Queryable, ReduceSpec, WpinqError};

use crate::edges::Edge;

/// The JDD query as a plan: records `(d_a, d_b)` (one per directed edge), each with weight
/// [`jdd_record_weight`]`(d_a, d_b)`.
///
/// The `temp` subplan is self-joined: both engines evaluate it once, but the source is
/// referenced through it twice. Privacy multiplicity: 4 (degrees once, edges once, and the
/// self-join doubles the pair).
pub fn jdd_plan(edges: &Plan<Edge>) -> Plan<(u64, u64)> {
    // (a, d_a) for each vertex a, weight ½.
    let degrees = edges.group_by(|e| e.0, |group| group.len() as u64);
    // ((a, b), d_a) for each directed edge (a, b), weight 1/(1 + 2 d_a).
    let temp = degrees.join(edges, |d| d.0, |e| e.0, |d, e| (*e, d.1));
    // (d_a, d_b) for each directed edge (a, b), weight 1/(2 + 2 d_a + 2 d_b).
    temp.join(&temp, |t| t.0, |t| (t.0 .1, t.0 .0), |x, y| (x.1, y.1))
}

/// [`jdd_plan`] in expression form: the same query (byte-identical weights), but
/// serializable to a [`PlanSpec`](wpinq::PlanSpec) and shippable to a measurement
/// service. Privacy multiplicity: 4.
pub fn jdd_plan_expr(edges: &Plan<Edge>) -> Plan<(u64, u64)> {
    let x = Expr::input();
    // (a, d_a) for each vertex a, weight ½.
    let degrees =
        edges.group_by_expr::<u32, u64>(x.clone().field(0), ReduceSpec::CountThen(Expr::input()));
    // ((a, b), d_a) for each directed edge (a, b): pair = (degree record, edge record).
    let temp = degrees.join_expr::<Edge, u32, ((u32, u32), u64)>(
        edges,
        x.clone().field(0),
        x.clone().field(0),
        Expr::tuple(vec![x.clone().field(1), x.clone().field(0).field(1)]),
    );
    // (d_a, d_b): each annotated edge matched against its own reversal.
    temp.join_expr::<((u32, u32), u64), (u32, u32), (u64, u64)>(
        &temp,
        x.clone().field(0),
        Expr::tuple(vec![
            x.clone().field(0).field(1),
            x.clone().field(0).field(0),
        ]),
        Expr::tuple(vec![x.clone().field(0).field(1), x.field(1).field(1)]),
    )
}

/// [`jdd_plan`] applied to a protected edge dataset.
pub fn jdd_query(edges: &Queryable<Edge>) -> Queryable<(u64, u64)> {
    edges.apply(jdd_plan)
}

/// The weight the JDD query assigns to one directed edge with endpoint degrees `(d_a, d_b)`
/// (equation (3) of the paper): `1 / (2 + 2 d_a + 2 d_b)`.
pub fn jdd_record_weight(da: u64, db: u64) -> f64 {
    1.0 / (2.0 + 2.0 * da as f64 + 2.0 * db as f64)
}

/// A released, rescaled JDD measurement.
#[derive(Debug)]
pub struct JddMeasurement {
    counts: NoisyCounts<(u64, u64)>,
    epsilon: f64,
}

impl JddMeasurement {
    /// Measures the JDD with `NoisyCount(·, ε)`; the query uses the edges 4 times, so this
    /// charges `4ε` of the graph's budget.
    pub fn measure<R: Rng + ?Sized>(
        edges: &Queryable<Edge>,
        epsilon: f64,
        rng: &mut R,
    ) -> Result<Self, WpinqError> {
        let counts = jdd_query(edges).noisy_count(epsilon, rng)?;
        Ok(JddMeasurement { counts, epsilon })
    }

    /// The ε each count was measured with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The raw noisy weight observed for the ordered degree pair `(d_a, d_b)`.
    pub fn raw(&self, da: u64, db: u64) -> f64 {
        self.counts.get(&(da, db))
    }

    /// The estimated number of *directed* edges whose endpoints have degrees `(d_a, d_b)`,
    /// obtained by dividing the noisy weight by the per-record weight.
    pub fn estimated_edges(&self, da: u64, db: u64) -> f64 {
        self.raw(da, db) / jdd_record_weight(da, db)
    }

    /// Estimates over every observed degree pair, rescaled to edge counts.
    pub fn estimates(&self) -> HashMap<(u64, u64), f64> {
        self.counts
            .iter_observed()
            .map(|(&(da, db), w)| ((da, db), w / jdd_record_weight(da, db)))
            .collect()
    }

    /// The effective noise amplitude on the rescaled estimate for `(d_a, d_b)`:
    /// `(2 + 2 d_a + 2 d_b) / ε`.
    pub fn noise_amplitude(&self, da: u64, db: u64) -> f64 {
        1.0 / (jdd_record_weight(da, db) * self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::GraphEdges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wpinq::PrivacyBudget;
    use wpinq_graph::{stats, Graph};

    fn toy_graph() -> Graph {
        Graph::from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)])
    }

    #[test]
    fn jdd_query_weight_matches_equation_three() {
        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let q = jdd_query(&edges.queryable());
        // Node degrees: d0 = 3, d1 = 2, d2 = 3, d3 = 2.
        // Directed edges with degree pair (3, 2): (0,1), (0,3), (2,1)? no — (2,1) is edge
        // (1,2) reversed, degrees (3, 2). Pairs realising (3,2): (0→1), (0→3), (2→1), (2→3).
        let expected_pairs = 4.0;
        let w = q.inspect().weight(&(3, 2));
        assert!(
            (w - expected_pairs * jdd_record_weight(3, 2)).abs() < 1e-9,
            "weight {w}"
        );
        // And the (3,3) pair comes from edge (0,2) in both directions.
        let w33 = q.inspect().weight(&(3, 3));
        assert!((w33 - 2.0 * jdd_record_weight(3, 3)).abs() < 1e-9);
    }

    #[test]
    fn jdd_query_costs_four_uses() {
        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::new(1.0));
        let q = jdd_query(&edges.queryable());
        assert_eq!(q.multiplicity_of(edges.protected().id()), 4);
        let mut rng = StdRng::seed_from_u64(1);
        q.noisy_count(0.1, &mut rng).unwrap();
        assert!((edges.budget().spent() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn jdd_expr_form_matches_closure_form_bitwise_and_serializes() {
        use wpinq::plan::PlanBindings;
        let mut rng = StdRng::seed_from_u64(19);
        let g = wpinq_graph::generators::powerlaw_cluster(30, 3, 0.5, &mut rng);
        let source = wpinq::Plan::<crate::edges::Edge>::source_expr("edges");
        let mut bindings = PlanBindings::new();
        bindings.bind(&source, crate::edges::symmetric_edge_dataset(&g));

        let a = jdd_plan(&source).eval(&bindings);
        let b = jdd_plan_expr(&source).eval(&bindings);
        assert_eq!(a.len(), b.len());
        for (record, weight) in a.iter() {
            assert_eq!(
                weight.to_bits(),
                b.weight(record).to_bits(),
                "JDD expr form differs at {record:?}"
            );
        }

        let expr_plan = jdd_plan_expr(&source);
        assert!(expr_plan.to_spec().is_some(), "JDD expr form serializes");
        assert_eq!(
            expr_plan.multiplicity_of(source.input_id().unwrap()),
            4,
            "JDD uses the edges source four times"
        );
        assert!(jdd_plan(&source).to_spec().is_none());
    }

    #[test]
    fn rescaled_estimates_recover_directed_edge_counts_at_high_epsilon() {
        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let mut rng = StdRng::seed_from_u64(5);
        let m = JddMeasurement::measure(&edges.queryable(), 1e6, &mut rng).unwrap();

        // Exact JDD (undirected) from the graph substrate, converted to directed pair counts.
        let exact = stats::joint_degree_distribution(&g);
        for ((da, db), undirected_count) in exact {
            let directed: f64 = if da == db {
                2.0 * undirected_count as f64
            } else {
                undirected_count as f64
            };
            let est = m.estimated_edges(da as u64, db as u64);
            assert!(
                (est - directed).abs() < 0.01,
                "pair ({da},{db}): estimate {est} vs exact {directed}"
            );
        }
    }

    #[test]
    fn noise_amplitude_grows_with_degrees() {
        let g = toy_graph();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let mut rng = StdRng::seed_from_u64(5);
        let m = JddMeasurement::measure(&edges.queryable(), 0.5, &mut rng).unwrap();
        assert!(m.noise_amplitude(10, 10) > m.noise_amplitude(2, 2));
        assert!((m.noise_amplitude(2, 3) - (2.0 + 4.0 + 6.0) / 0.5).abs() < 1e-9);
    }
}
