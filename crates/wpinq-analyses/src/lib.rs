//! # wpinq-analyses — the paper's graph analyses, written in wPINQ
//!
//! Section 3 of the paper expresses a family of graph statistics as short wPINQ programs
//! whose privacy cost is certified automatically by the platform. This crate reproduces
//! them, together with the baselines the paper compares against and the measurement
//! post-processing of Section 3.1.
//!
//! Since the plan-IR refactor, each analysis is defined **once** as a
//! [`Plan`](wpinq::plan::Plan)-building function (`degree_ccdf_plan`, `tbd_plan`,
//! `tbi_plan`, `jdd_plan`, …) over a shared [`edges::EdgeSource`]. The `*_query` wrappers
//! apply that plan to a protected dataset for budgeted batch measurement, and the MCMC
//! scorers in `wpinq-mcmc` lower the *same* plan onto a candidate's delta stream for
//! incremental scoring — batch answers, incremental scoring, and privacy accounting all
//! flow from one definition.
//!
//! The degree, edges, nodes, and triangles workloads additionally exist in
//! **expression form** (`degree_ccdf_plan_expr`, `edge_count_plan_expr`,
//! `nodes_plan_expr`, `tbd_plan_expr`, …): the same queries built from the `wpinq-expr`
//! first-order expression language instead of Rust closures. They evaluate
//! byte-identically to the closure forms, but serialize to the `PlanSpec` wire format —
//! over an [`edges::EdgeSource::named`] source they can be shipped to a `wpinq-service`
//! measurement server (PINQ's agent model across processes).
//!
//! Modules:
//!
//! * [`edges`] — turning a [`Graph`](wpinq_graph::Graph) into the protected symmetric
//!   directed edge dataset every query consumes (edge differential privacy).
//! * [`degree`] — the degree CCDF and degree sequence queries (Section 3.1).
//! * [`nodes`] — the edges → nodes transformation of Section 2.8 (node count at weight ½).
//! * [`jdd`] — the joint degree distribution query (Section 3.2), weight 1/(2+2dₐ+2d_b).
//! * [`triangles`] — Triangles-by-Degree (Section 3.3, Theorem 2), including the degree
//!   bucketing of Section 5.2.
//! * [`squares`] — Squares-by-Degree (Section 3.4, Theorem 3).
//! * [`tbi`] — Triangles-by-Intersect (Section 5.3), the single-count query used in the
//!   headline experiments.
//! * [`motifs`] — the path-join pattern generalised to longer paths and cycles (Section 3.5).
//! * [`workload`] — merging independently-authored query requests into one plan, so the
//!   optimizer's common-subplan extraction + idempotent collapse charge duplicated
//!   requests once (`Plan::explain()` certifies the ε saving).
//! * [`postprocess`] — PAVA isotonic regression and the joint CCDF/degree-sequence grid fit.
//! * [`baselines`] — Hay et al. degree sequences, Sala et al. JDD noise, and the
//!   worst-case-sensitivity triangle count that Figure 1 motivates against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod degree;
pub mod edges;
pub mod jdd;
pub mod motifs;
pub mod nodes;
pub mod postprocess;
pub mod squares;
pub mod tbi;
pub mod triangles;
pub mod workload;

pub use edges::{EdgeSource, GraphEdges};
