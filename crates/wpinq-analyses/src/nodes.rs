//! The edges → nodes transformation of Section 2.8.
//!
//! Each unit-weight directed edge `(a, b)` contributes weight ½ to each endpoint, so a node
//! of degree `d` accumulates weight `d` (over the symmetric edge set). Shaving at ½ and
//! keeping only slice 0 leaves every present node with weight exactly ½ — the most weight a
//! stable transformation can give a node, since one edge identifies two nodes.

use wpinq::{Plan, Queryable};

use crate::edges::Edge;

/// The node dataset as a plan: each node that appears on some edge, with weight ½.
///
/// Privacy multiplicity: 1.
pub fn nodes_plan(edges: &Plan<Edge>) -> Plan<u32> {
    edges
        .select_many_unit(|&(a, b)| [a, b])
        .shave_const(0.5)
        .filter(|(_, i)| *i == 0)
        .select(|(v, _)| *v)
}

/// The node-count query as a plan: a single record `()` whose weight is ½ × (number of
/// non-isolated nodes). Callers double the released value to estimate |V|.
///
/// Privacy multiplicity: 1.
pub fn node_count_plan(edges: &Plan<Edge>) -> Plan<()> {
    nodes_plan(edges).select(|_| ())
}

/// [`nodes_plan`] applied to a protected edge dataset.
pub fn nodes_query(edges: &Queryable<Edge>) -> Queryable<u32> {
    edges.apply(nodes_plan)
}

/// [`node_count_plan`] applied to a protected edge dataset.
pub fn node_count_query(edges: &Queryable<Edge>) -> Queryable<()> {
    edges.apply(node_count_plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::GraphEdges;
    use wpinq::PrivacyBudget;
    use wpinq_graph::Graph;

    #[test]
    fn every_touched_node_gets_weight_half() {
        let g = Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let nodes = nodes_query(&edges.queryable());
        for v in 0..4u32 {
            assert!(
                (nodes.inspect().weight(&v) - 0.5).abs() < 1e-9,
                "node {v} should have weight 0.5"
            );
        }
        assert_eq!(nodes.inspect().len(), 4);
        assert_eq!(nodes.max_multiplicity(), 1);
    }

    #[test]
    fn isolated_nodes_do_not_appear() {
        let mut g = Graph::new(10);
        g.add_edge(0, 1);
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let nodes = nodes_query(&edges.queryable());
        assert_eq!(nodes.inspect().len(), 2);
    }

    #[test]
    fn node_count_is_half_the_number_of_nodes() {
        let g = Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let count = node_count_query(&edges.queryable());
        assert!((count.inspect().weight(&()) - 2.5).abs() < 1e-9);
    }
}
