//! The edges → nodes transformation of Section 2.8.
//!
//! Each unit-weight directed edge `(a, b)` contributes weight ½ to each endpoint, so a node
//! of degree `d` accumulates weight `d` (over the symmetric edge set). Shaving at ½ and
//! keeping only slice 0 leaves every present node with weight exactly ½ — the most weight a
//! stable transformation can give a node, since one edge identifies two nodes.

use wpinq::{Expr, Plan, Queryable};

use crate::edges::Edge;

/// The node dataset as a plan: each node that appears on some edge, with weight ½.
///
/// Privacy multiplicity: 1.
pub fn nodes_plan(edges: &Plan<Edge>) -> Plan<u32> {
    edges
        .select_many_unit(|&(a, b)| [a, b])
        .shave_const(0.5)
        .filter(|(_, i)| *i == 0)
        .select(|(v, _)| *v)
}

/// [`nodes_plan`] in expression form: the same query (byte-identical releases), but
/// serializable and shippable to a measurement service.
pub fn nodes_plan_expr(edges: &Plan<Edge>) -> Plan<u32> {
    let x = Expr::input();
    edges
        .select_many_unit_expr::<u32>(vec![x.clone().field(0), x.clone().field(1)])
        .shave_const(0.5)
        .filter_expr(x.clone().field(1).eq(Expr::u64(0)))
        .select_expr::<u32>(x.field(0))
}

/// The node-count query as a plan: a single record `()` whose weight is ½ × (number of
/// non-isolated nodes). Callers double the released value to estimate |V|.
///
/// Privacy multiplicity: 1.
pub fn node_count_plan(edges: &Plan<Edge>) -> Plan<()> {
    nodes_plan(edges).select(|_| ())
}

/// [`node_count_plan`] in expression form (serializable; byte-identical releases).
pub fn node_count_plan_expr(edges: &Plan<Edge>) -> Plan<()> {
    nodes_plan_expr(edges).select_expr::<()>(Expr::unit())
}

/// [`nodes_plan`] applied to a protected edge dataset.
pub fn nodes_query(edges: &Queryable<Edge>) -> Queryable<u32> {
    edges.apply(nodes_plan)
}

/// [`node_count_plan`] applied to a protected edge dataset.
pub fn node_count_query(edges: &Queryable<Edge>) -> Queryable<()> {
    edges.apply(node_count_plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::GraphEdges;
    use wpinq::PrivacyBudget;
    use wpinq_graph::Graph;

    #[test]
    fn every_touched_node_gets_weight_half() {
        let g = Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let nodes = nodes_query(&edges.queryable());
        for v in 0..4u32 {
            assert!(
                (nodes.inspect().weight(&v) - 0.5).abs() < 1e-9,
                "node {v} should have weight 0.5"
            );
        }
        assert_eq!(nodes.inspect().len(), 4);
        assert_eq!(nodes.max_multiplicity(), 1);
    }

    #[test]
    fn expr_form_matches_closure_form_bitwise() {
        use wpinq::plan::PlanBindings;
        let g = Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        let source = Plan::<Edge>::source_expr("edges");
        let mut bindings = PlanBindings::new();
        bindings.bind(&source, crate::edges::symmetric_edge_dataset(&g));
        let a = nodes_plan(&source).eval(&bindings);
        let b = nodes_plan_expr(&source).eval(&bindings);
        assert_eq!(a.len(), b.len());
        for (record, weight) in a.iter() {
            assert_eq!(weight.to_bits(), b.weight(record).to_bits());
        }
        assert!(nodes_plan_expr(&source).to_spec().is_some());
        assert!(node_count_plan_expr(&source).to_spec().is_some());
        let c = node_count_plan(&source).eval(&bindings);
        let d = node_count_plan_expr(&source).eval(&bindings);
        assert_eq!(c.weight(&()).to_bits(), d.weight(&()).to_bits());
    }

    #[test]
    fn isolated_nodes_do_not_appear() {
        let mut g = Graph::new(10);
        g.add_edge(0, 1);
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let nodes = nodes_query(&edges.queryable());
        assert_eq!(nodes.inspect().len(), 2);
    }

    #[test]
    fn node_count_is_half_the_number_of_nodes() {
        let g = Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]);
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let count = node_count_query(&edges.queryable());
        assert!((count.inspect().weight(&()) - 2.5).abs() < 1e-9);
    }
}
