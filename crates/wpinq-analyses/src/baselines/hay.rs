//! Hay et al.'s differentially-private degree sequence (the baseline of Section 3.1).
//!
//! The mechanism releases the sorted (non-increasing) degree sequence with element-wise
//! Laplace noise and post-processes it with isotonic regression. Changing one edge changes
//! two entries of the degree sequence by one each, so the sequence has L1 sensitivity 2 and
//! the noise scale is `2/ε`. Unlike the wPINQ query of Section 3.1, the number of nodes
//! (the length of the sequence) is assumed public — the limitation the paper points out.

use rand::Rng;

use wpinq::noise::Laplace;
use wpinq_graph::{stats, Graph};

use crate::postprocess::pava_non_increasing;

/// The noisy degree sequence before post-processing: `d_(i) + Laplace(2/ε)` for every rank.
pub fn noisy_degree_sequence<R: Rng + ?Sized>(
    graph: &Graph,
    epsilon: f64,
    rng: &mut R,
) -> Vec<f64> {
    let laplace = Laplace::new(2.0 / epsilon);
    stats::degree_sequence(graph)
        .into_iter()
        .map(|d| d as f64 + laplace.sample(rng))
        .collect()
}

/// The full Hay et al. estimator: noisy degree sequence followed by isotonic regression
/// onto non-increasing sequences.
pub fn hay_degree_sequence<R: Rng + ?Sized>(graph: &Graph, epsilon: f64, rng: &mut R) -> Vec<f64> {
    pava_non_increasing(&noisy_degree_sequence(graph, epsilon, rng))
}

/// Mean absolute error of an estimated degree sequence against the graph's true sequence.
pub fn degree_sequence_mae(graph: &Graph, estimate: &[f64]) -> f64 {
    let truth = stats::degree_sequence(graph);
    if truth.is_empty() {
        return 0.0;
    }
    let n = truth.len().max(estimate.len());
    let mut total = 0.0;
    for i in 0..n {
        let t = truth.get(i).copied().unwrap_or(0) as f64;
        let e = estimate.get(i).copied().unwrap_or(0.0);
        total += (t - e).abs();
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wpinq_graph::generators;

    #[test]
    fn estimate_has_public_length_and_is_monotone() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::barabasi_albert(200, 3, &mut rng);
        let est = hay_degree_sequence(&g, 0.5, &mut rng);
        assert_eq!(est.len(), g.num_nodes());
        assert!(est.windows(2).all(|w| w[0] >= w[1] - 1e-9));
    }

    #[test]
    fn isotonic_regression_reduces_error() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::barabasi_albert(400, 3, &mut rng);
        let mut raw_err = 0.0;
        let mut fit_err = 0.0;
        for trial in 0..5 {
            let mut trial_rng = StdRng::seed_from_u64(100 + trial);
            let raw = noisy_degree_sequence(&g, 0.2, &mut trial_rng);
            let fit = pava_non_increasing(&raw);
            raw_err += degree_sequence_mae(&g, &raw);
            fit_err += degree_sequence_mae(&g, &fit);
        }
        assert!(
            fit_err < raw_err,
            "PAVA should reduce error: fit {fit_err} vs raw {raw_err}"
        );
    }

    #[test]
    fn high_epsilon_recovers_truth() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::erdos_renyi(100, 300, &mut rng);
        let est = hay_degree_sequence(&g, 1e6, &mut rng);
        assert!(degree_sequence_mae(&g, &est) < 0.01);
    }
}
