//! Sala et al.'s joint-degree-distribution mechanism (Section 3.2, Claim 6 / Appendix C).
//!
//! For every unordered degree pair `(dᵢ, dⱼ)` the mechanism releases the number of edges
//! incident on nodes of those degrees perturbed by `Laplace(4·max(dᵢ, dⱼ)/ε)`. The paper
//! reproduces the privacy proof (Claim 6) and notes that the *original* evaluation released
//! exact zeros for unobserved pairs — a privacy flaw; [`sala_jdd_full`] is the corrected
//! variant that noises every pair up to `d_max`.

use std::collections::HashMap;

use rand::Rng;

use wpinq::noise::Laplace;
use wpinq_graph::{stats, Graph};

/// The per-pair noise scale of the mechanism: `4·max(dᵢ, dⱼ)/ε`.
pub fn sala_noise_scale(di: usize, dj: usize, epsilon: f64) -> f64 {
    4.0 * di.max(dj).max(1) as f64 / epsilon
}

/// The flawed-as-published variant: only pairs that actually occur in the graph receive a
/// (noisy) count; absent pairs are implicitly released as exact zeros.
pub fn sala_jdd_observed_only<R: Rng + ?Sized>(
    graph: &Graph,
    epsilon: f64,
    rng: &mut R,
) -> HashMap<(usize, usize), f64> {
    stats::joint_degree_distribution(graph)
        .into_iter()
        .map(|((di, dj), count)| {
            let noise = Laplace::new(sala_noise_scale(di, dj, epsilon)).sample(rng);
            ((di, dj), count as f64 + noise)
        })
        .collect()
}

/// The corrected mechanism: every unordered degree pair `(dᵢ ≤ dⱼ)` with `dⱼ ≤ d_max`
/// receives a noisy count, including pairs with a true count of zero.
pub fn sala_jdd_full<R: Rng + ?Sized>(
    graph: &Graph,
    epsilon: f64,
    rng: &mut R,
) -> HashMap<(usize, usize), f64> {
    let dmax = stats::max_degree(graph);
    let observed = stats::joint_degree_distribution(graph);
    let mut out = HashMap::new();
    for di in 1..=dmax {
        for dj in di..=dmax {
            let truth = observed.get(&(di, dj)).copied().unwrap_or(0) as f64;
            let noise = Laplace::new(sala_noise_scale(di, dj, epsilon)).sample(rng);
            out.insert((di, dj), truth + noise);
        }
    }
    out
}

/// The ratio the paper quotes when comparing effective noise levels: wPINQ's rescaled JDD
/// noise amplitude `(8 + 8dᵢ + 8dⱼ)/ε` (after accounting for using the input four times and
/// matching Sala et al.'s undirected privacy unit) divided by Sala et al.'s `4·max(dᵢ, dⱼ)/ε`.
/// The paper concludes this lies between two and four.
pub fn wpinq_vs_sala_noise_ratio(di: usize, dj: usize) -> f64 {
    let wpinq = 8.0 + 8.0 * di as f64 + 8.0 * dj as f64;
    wpinq / (4.0 * di.max(dj).max(1) as f64)
}

/// Numerically estimates the privacy loss of the corrected mechanism on a specific pair of
/// neighbouring graphs (differing in one edge), by evaluating
/// `Σ_{(i,j)} |t₁(i,j) − t₂(i,j)| / n(i,j)` — the quantity bounded by 1 in the proof of
/// Claim 6. Returns that bound; values ≤ 1 certify ε-DP for this pair.
pub fn claim6_privacy_bound(g1: &Graph, g2: &Graph) -> f64 {
    let t1 = stats::joint_degree_distribution(g1);
    let t2 = stats::joint_degree_distribution(g2);
    let mut keys: Vec<(usize, usize)> = t1.keys().chain(t2.keys()).copied().collect();
    keys.sort_unstable();
    keys.dedup();
    let mut total = 0.0;
    for key in keys {
        let a = t1.get(&key).copied().unwrap_or(0) as f64;
        let b = t2.get(&key).copied().unwrap_or(0) as f64;
        // n(i, j) with ε = 1: 4·max(dᵢ, dⱼ).
        total += (a - b).abs() / (4.0 * key.0.max(key.1).max(1) as f64);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wpinq_graph::generators;

    #[test]
    fn noise_scale_grows_with_degree() {
        assert!(sala_noise_scale(10, 3, 0.5) > sala_noise_scale(2, 3, 0.5));
        assert!((sala_noise_scale(2, 5, 1.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn full_variant_covers_all_pairs() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]);
        let full = sala_jdd_full(&g, 0.5, &mut rng);
        let dmax = stats::max_degree(&g);
        assert_eq!(full.len(), dmax * (dmax + 1) / 2);
        // Every released value is noisy (almost surely non-integral), including zero pairs.
        assert!(full.values().all(|v| v.fract().abs() > 1e-12));
        let observed = sala_jdd_observed_only(&g, 0.5, &mut rng);
        assert!(observed.len() < full.len());
    }

    #[test]
    fn high_epsilon_recovers_jdd() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::erdos_renyi(60, 150, &mut rng);
        let released = sala_jdd_full(&g, 1e7, &mut rng);
        for ((di, dj), count) in stats::joint_degree_distribution(&g) {
            let got = released.get(&(di, dj)).copied().unwrap_or(f64::NAN);
            assert!(
                (got - count as f64).abs() < 0.05,
                "pair ({di},{dj}): got {got} want {count}"
            );
        }
    }

    #[test]
    fn claim6_bound_holds_on_random_neighbouring_graphs() {
        // Claim 6's proof shows Σ |t₁ − t₂| / (4 max(dᵢ,dⱼ)) ≤ 1 for graphs differing in one
        // edge; check it numerically across several random graphs and removed edges.
        let mut rng = StdRng::seed_from_u64(3);
        for trial in 0..10 {
            let g1 = generators::powerlaw_cluster(80, 3, 0.5, &mut rng);
            let edge = g1
                .edges()
                .nth(trial * 7 % g1.num_edges())
                .expect("graph has edges");
            let mut g2 = g1.clone();
            g2.remove_edge(edge.0, edge.1);
            let bound = claim6_privacy_bound(&g1, &g2);
            assert!(
                bound <= 1.0 + 1e-9,
                "claim 6 bound violated: {bound} for removed edge {edge:?}"
            );
        }
    }

    #[test]
    fn wpinq_to_sala_ratio_is_between_two_and_four_for_balanced_degrees() {
        // The paper's conclusion: wPINQ's automatic analysis is worse by a factor between
        // two and four. For dᵢ = dⱼ = d the ratio is (8 + 16 d) / (4 d) → 4 as d grows.
        for d in [2usize, 5, 10, 50] {
            let ratio = wpinq_vs_sala_noise_ratio(d, d);
            assert!(ratio > 2.0 && ratio <= 6.0, "ratio {ratio} for degree {d}");
        }
        assert!(wpinq_vs_sala_noise_ratio(100, 100) < 4.2);
    }
}
