//! Worst-case-sensitivity triangle counting — the strawman of Figure 1.
//!
//! Under edge differential privacy, adding one edge to an `n`-node graph can create up to
//! `n − 2` triangles (the left graph of Figure 1), so a mechanism that releases the global
//! triangle count with noise calibrated to worst-case sensitivity must add
//! `Laplace((n − 2)/ε)` — regardless of whether the actual graph is anywhere near that
//! worst case. wPINQ's TbD/TbI queries instead scale down the weight of troublesome
//! triangles and keep the noise constant.

use rand::Rng;

use wpinq::noise::Laplace;
use wpinq_graph::{stats, Graph};

/// The worst-case (global) sensitivity of the triangle count under single-edge changes:
/// `max(|V| − 2, 1)`.
pub fn triangle_count_sensitivity(graph: &Graph) -> f64 {
    (graph.num_nodes().saturating_sub(2)).max(1) as f64
}

/// The local sensitivity of the triangle count at this specific graph: the largest number
/// of triangles any single present-or-absent edge participates in (i.e. the largest number
/// of common neighbours over all node pairs). Included for comparison with
/// instance-dependent approaches such as smooth sensitivity.
pub fn triangle_count_local_sensitivity(graph: &Graph) -> f64 {
    let n = graph.num_nodes() as u32;
    let mut worst = 0usize;
    for a in 0..n {
        for b in (a + 1)..n {
            worst = worst.max(graph.common_neighbors(a, b).len());
        }
    }
    worst.max(1) as f64
}

/// A released worst-case-sensitivity triangle count: `Δ + Laplace((|V| − 2)/ε)`.
pub fn worst_case_triangle_count<R: Rng + ?Sized>(graph: &Graph, epsilon: f64, rng: &mut R) -> f64 {
    let scale = triangle_count_sensitivity(graph) / epsilon;
    stats::triangle_count(graph) as f64 + Laplace::new(scale).sample(rng)
}

/// The expected absolute error of the worst-case mechanism (the Laplace mean absolute
/// deviation equals its scale).
pub fn worst_case_expected_error(graph: &Graph, epsilon: f64) -> f64 {
    triangle_count_sensitivity(graph) / epsilon
}

/// The expected absolute error of estimating the total triangle count by dividing wPINQ's
/// TbD measurement for degree triple `(x, y, z)` by its per-triangle weight: the Laplace
/// noise of scale `1/ε` is amplified by `(x² + y² + z²)/3`.
pub fn tbd_expected_error_for_triple(x: u64, y: u64, z: u64, epsilon: f64) -> f64 {
    ((x * x + y * y + z * z) as f64 / 3.0) / epsilon
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wpinq_graph::generators;

    /// The right-hand graph of Figure 1: a long cycle (constant degree 2, no triangles is
    /// avoided by adding chords to make constant-degree triangles).
    fn bounded_degree_triangle_graph(n: u32) -> Graph {
        // A "triangle chain": triangles (3i, 3i+1, 3i+2) — every node has degree 2.
        let mut g = Graph::new(n as usize);
        let mut v = 0;
        while v + 2 < n {
            g.add_edge(v, v + 1);
            g.add_edge(v + 1, v + 2);
            g.add_edge(v, v + 2);
            v += 3;
        }
        g
    }

    #[test]
    fn sensitivity_scales_with_node_count_not_structure() {
        let small = bounded_degree_triangle_graph(30);
        let large = bounded_degree_triangle_graph(300);
        assert_eq!(triangle_count_sensitivity(&small), 28.0);
        assert_eq!(triangle_count_sensitivity(&large), 298.0);
        // But the local sensitivity of these bounded-degree graphs is constant.
        assert_eq!(triangle_count_local_sensitivity(&small), 1.0);
        assert_eq!(triangle_count_local_sensitivity(&large), 1.0);
    }

    #[test]
    fn worst_case_noise_drowns_small_counts_on_large_graphs() {
        // On the benign bounded-degree graph, the worst-case mechanism's expected error
        // (≈ n/ε) exceeds the true triangle count (n/3), while wPINQ's per-triple error for
        // the constant-degree triple (2,2,2) is constant.
        let g = bounded_degree_triangle_graph(900);
        let eps = 0.5;
        let truth = stats::triangle_count(&g) as f64;
        assert!(worst_case_expected_error(&g, eps) > truth);
        assert!(tbd_expected_error_for_triple(2, 2, 2, eps) < 10.0);
    }

    #[test]
    fn released_count_is_unbiased_at_high_epsilon() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = bounded_degree_triangle_graph(90);
        let released = worst_case_triangle_count(&g, 1e6, &mut rng);
        assert!((released - 30.0).abs() < 0.01);
    }

    #[test]
    fn local_sensitivity_detects_the_figure1_worst_case() {
        // The left graph of Figure 1: adding edge (0,1) would create |V| − 2 triangles, and
        // the local sensitivity reflects it even before the edge exists.
        let mut g = Graph::new(50);
        for v in 2..50 {
            g.add_edge(0, v);
            g.add_edge(1, v);
        }
        assert_eq!(triangle_count_local_sensitivity(&g), 48.0);
        let mut rng = StdRng::seed_from_u64(1);
        let hub_graph = generators::barabasi_albert(100, 3, &mut rng);
        assert!(triangle_count_local_sensitivity(&hub_graph) >= 1.0);
    }
}
