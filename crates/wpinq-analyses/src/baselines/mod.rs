//! Baseline mechanisms the paper compares against.
//!
//! * [`hay`] — Hay et al. (ICDM'09): noisy degree sequences post-processed by isotonic
//!   regression, requiring the number of nodes to be public.
//! * [`sala`] — Sala et al. (IMC'11): joint degree distribution released with bespoke
//!   `4·max(dᵢ, dⱼ)/ε` Laplace noise (Claim 6 / Appendix C).
//! * [`worst_case`] — the PINQ-style worst-case-sensitivity approach to triangle counting
//!   that Figure 1 motivates against: noise proportional to `|V| − 2` regardless of the
//!   actual graph.

pub mod hay;
pub mod sala;
pub mod worst_case;
