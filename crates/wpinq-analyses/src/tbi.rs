//! Triangles-by-Intersect (TbI): Section 5.3.
//!
//! Instead of reporting a count per degree triple, TbI releases a *single* noisy number:
//! the total weight of length-two paths that survive intersection with their own rotation —
//! a quantity only triangles contribute to. The signal is harder to interpret directly but
//! far less noise is introduced (privacy cost 4ε instead of 9ε), and the MCMC workflow can
//! still extract triangle structure from it (Figure 4, Table 2).

use rand::Rng;

use wpinq::{Plan, Queryable, WpinqError};

use crate::edges::Edge;
use crate::triangles::length_two_paths_plan;

/// The triangle records retained by the intersection, as a plan: paths `(a, b, c)` whose
/// rotation `(b, c, a)` is also a path, i.e. paths that lie on a triangle. Each carries
/// weight `min(1/(2·d_b), 1/(2·d_c))`.
///
/// The `paths` subplan is shared between the intersection's two branches; both engines
/// evaluate it once (the incremental lowering compiles it to a single shared join node).
/// Privacy multiplicity: 4 — sharing does not reduce the privacy price of a reference.
pub fn triangle_paths_plan(edges: &Plan<Edge>) -> Plan<(u32, u32, u32)> {
    let paths = length_two_paths_plan(edges);
    paths.select(|p| (p.1, p.2, p.0)).intersect(&paths)
}

/// The TbI query as a plan: a single record `()` whose weight is
/// `Σ_{triangles (a,b,c)} min(1/d_a, 1/d_b) + min(1/d_a, 1/d_c) + min(1/d_b, 1/d_c)`
/// (equation (8)).
///
/// Privacy multiplicity: 4.
pub fn tbi_plan(edges: &Plan<Edge>) -> Plan<()> {
    triangle_paths_plan(edges).select(|_| ())
}

/// [`triangle_paths_plan`] applied to a protected edge dataset.
pub fn triangle_paths_query(edges: &Queryable<Edge>) -> Queryable<(u32, u32, u32)> {
    edges.apply(triangle_paths_plan)
}

/// [`tbi_plan`] applied to a protected edge dataset.
pub fn tbi_query(edges: &Queryable<Edge>) -> Queryable<()> {
    edges.apply(tbi_plan)
}

/// Equation (8) evaluated exactly on a graph: the signal the TbI query would report without
/// noise. Used by the experiment harness to sanity-check measurements and by the paper's
/// discussion of when the signal exceeds the noise level.
pub fn tbi_exact_signal(graph: &wpinq_graph::Graph) -> f64 {
    let deg: Vec<f64> = (0..graph.num_nodes() as u32)
        .map(|v| graph.degree(v) as f64)
        .collect();
    let mut total = 0.0;
    for (u, v) in graph.edges() {
        for w in graph.common_neighbors(u, v) {
            if w > v {
                let (du, dv, dw) = (deg[u as usize], deg[v as usize], deg[w as usize]);
                total +=
                    (1.0 / du).min(1.0 / dv) + (1.0 / du).min(1.0 / dw) + (1.0 / dv).min(1.0 / dw);
            }
        }
    }
    total
}

/// A released TbI measurement: one noisy number plus the ε it was taken at.
#[derive(Debug, Clone, Copy)]
pub struct TbiMeasurement {
    /// The noisy total triangle weight (equation (8) plus `Laplace(1/ε)`).
    pub noisy_signal: f64,
    /// The ε of the measurement (the query costs `4ε` of the edge budget).
    pub epsilon: f64,
}

impl TbiMeasurement {
    /// Measures TbI with `NoisyCount(·, ε)`, charging `4ε`.
    pub fn measure<R: Rng + ?Sized>(
        edges: &Queryable<Edge>,
        epsilon: f64,
        rng: &mut R,
    ) -> Result<Self, WpinqError> {
        let counts = tbi_query(edges).noisy_count(epsilon, rng)?;
        Ok(TbiMeasurement {
            noisy_signal: counts.get(&()),
            epsilon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edges::GraphEdges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wpinq::PrivacyBudget;
    use wpinq_graph::{generators, stats, Graph};

    fn triangle_with_tail() -> Graph {
        Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn tbi_signal_matches_equation_eight_on_small_graph() {
        let g = triangle_with_tail();
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let q = tbi_query(&edges.queryable());
        // Triangle (0,1,2) with degrees (2,2,3):
        // min(1/2,1/2) + min(1/2,1/3) + min(1/2,1/3) = 1/2 + 1/3 + 1/3 = 7/6.
        let expected = 7.0 / 6.0;
        assert!((q.inspect().weight(&()) - expected).abs() < 1e-9);
        assert!((tbi_exact_signal(&g) - expected).abs() < 1e-12);
    }

    #[test]
    fn tbi_query_matches_exact_signal_on_random_graph() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = generators::powerlaw_cluster(80, 3, 0.7, &mut rng);
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let q = tbi_query(&edges.queryable());
        let expected = tbi_exact_signal(&g);
        assert!(
            (q.inspect().weight(&()) - expected).abs() < 1e-6,
            "query {} vs exact {expected}",
            q.inspect().weight(&())
        );
        assert!(expected > 0.0);
    }

    #[test]
    fn tbi_costs_four_uses() {
        let g = triangle_with_tail();
        let edges = GraphEdges::new(&g, PrivacyBudget::new(1.0));
        let q = tbi_query(&edges.queryable());
        assert_eq!(q.multiplicity_of(edges.protected().id()), 4);
        let mut rng = StdRng::seed_from_u64(0);
        q.noisy_count(0.1, &mut rng).unwrap();
        assert!((edges.budget().spent() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn triangle_free_graph_has_zero_signal() {
        let g = Graph::from_edges([(0, 1), (1, 2), (2, 3), (3, 4)]);
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        assert_eq!(tbi_query(&edges.queryable()).inspect().weight(&()), 0.0);
        assert_eq!(tbi_exact_signal(&g), 0.0);
    }

    #[test]
    fn rewired_random_graph_has_much_smaller_signal() {
        // The core experimental contrast of Figure 4: real graphs have far more TbI signal
        // than degree-matched random graphs.
        let mut rng = StdRng::seed_from_u64(21);
        let real = generators::powerlaw_cluster(300, 4, 0.9, &mut rng);
        let mut random = real.clone();
        let num_edges = random.num_edges();
        generators::degree_preserving_rewire(&mut random, 20 * num_edges, &mut rng);
        let s_real = tbi_exact_signal(&real);
        let s_random = tbi_exact_signal(&random);
        assert!(
            s_random < 0.5 * s_real,
            "random signal {s_random} should be well below real signal {s_real}"
        );
        assert!(stats::triangle_count(&random) < stats::triangle_count(&real));
    }

    #[test]
    fn measurement_is_close_to_signal_at_moderate_epsilon() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = generators::powerlaw_cluster(200, 4, 0.8, &mut rng);
        let edges = GraphEdges::new(&g, PrivacyBudget::unlimited());
        let m = TbiMeasurement::measure(&edges.queryable(), 0.5, &mut rng).unwrap();
        let signal = tbi_exact_signal(&g);
        // Laplace(1/0.5) noise has std-dev ~2.8; the signal on this graph is tens of units.
        assert!(
            (m.noisy_signal - signal).abs() < 30.0,
            "noisy {} vs exact {signal}",
            m.noisy_signal
        );
        assert_eq!(m.epsilon, 0.5);
    }
}
