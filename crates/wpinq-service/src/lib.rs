//! # wpinq-service — the measurement service of PINQ's agent model
//!
//! wPINQ (like PINQ before it) separates two roles: the **analyst**, who authors
//! queries, and the **trusted curator**, who owns the sensitive data and the privacy
//! budgets and is the only party that ever evaluates anything. Inside one process the
//! [`Queryable`](wpinq::Queryable) front end plays both roles; this crate splits them
//! across a process boundary, which the first-order expression language
//! (`wpinq-expr`) makes possible: expression-built plans serialize to the
//! [`PlanSpec`](wpinq_expr::PlanSpec) wire format, so the analyst ships *plan text* and
//! receives *noisy text* back — compiled code never crosses, raw data never leaves.
//!
//! * [`MeasurementService`] — the trusted side: registered datasets, per-analyst
//!   [`AnalystBudgets`](wpinq::budget::AnalystBudgets) grants, plan validation,
//!   optimizer-deduplicated `k·ε` accounting (two-phase and all-or-nothing across
//!   grants, safe under concurrent requests), execution under a configurable
//!   [`Executor`](wpinq::plan::Executor), an audit log of every admitted plan, the
//!   cross-request measurement [`cache`], and a JSON front door
//!   ([`MeasurementService::handle_line`]). `Send + Sync`: one
//!   `Arc<MeasurementService>` serves any number of request threads.
//! * [`Client`] — the analyst side: typed `Plan<T>` in, typed release out, generic over
//!   a [`Transport`] — the very same envelope bytes flow [`InProcess`] or over [`Tcp`]
//!   to a [`serve_tcp`] server (accept loop + worker threadpool, no async runtime).
//! * [`release`] — the canonical, bit-exact release encoding shared by both sides.
//!
//! See `PROTOCOL.md` at the repository root for the v2 envelope, the stable error
//! codes, and the cache's privacy accounting; the README's service-architecture section
//! has the layering diagram (transport → session → service → backend).
//!
//! **Determinism guarantee** (property-tested in `tests/`): for a fixed RNG state, a
//! plan measured through the service — serialize, parse, validate, rebuild dynamically,
//! optimize, evaluate, release — produces a byte-identical release to the same plan
//! measured locally in its typed form, under every executor (sequential, 2-shard,
//! 8-shard) and optimize level. Releases are a pure function of (plan, data, ε, RNG
//! state); transport and representation leave no fingerprint. The measurement cache
//! adds the service-level corollary: an identical repeated request returns the *same*
//! bytes again, with zero additional ε charged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod release;
pub mod service;
pub mod transport;

pub use cache::{
    CacheStats, MeasurementCache, CACHE_EVICTIONS_METRIC, CACHE_HITS_METRIC, CACHE_MISSES_METRIC,
};
pub use client::{Client, ClientError, ServiceClient, TypedRelease};
pub use release::{
    release_records_from_response, release_records_json, release_to_json, release_values_to_json,
};
pub use service::{
    MeasureRequest, MeasureResponse, MeasurementService, ResponseEncoding, ServiceError,
    AUDIT_DROPPED_METRIC, DEFAULT_AUDIT_CAPACITY, DEFAULT_CACHE_CAPACITY, REQUESTS_METRIC,
    REQUEST_HEADER, REQUEST_LATENCY_METRIC, REQUEST_VERSION,
};
pub use transport::{serve_metrics, serve_tcp, InProcess, ServerHandle, Tcp, Transport};
