//! # wpinq-service — the measurement service of PINQ's agent model
//!
//! wPINQ (like PINQ before it) separates two roles: the **analyst**, who authors
//! queries, and the **trusted curator**, who owns the sensitive data and the privacy
//! budgets and is the only party that ever evaluates anything. Inside one process the
//! [`Queryable`](wpinq::Queryable) front end plays both roles; this crate splits them
//! across a process boundary, which the first-order expression language
//! (`wpinq-expr`) makes possible: expression-built plans serialize to the
//! [`PlanSpec`](wpinq_expr::PlanSpec) wire format, so the analyst ships *plan text* and
//! receives *noisy text* back — compiled code never crosses, raw data never leaves.
//!
//! * [`MeasurementService`] — the trusted side: registered datasets, per-analyst
//!   [`AnalystBudgets`](wpinq::budget::AnalystBudgets) grants, plan validation,
//!   optimizer-deduplicated `k·ε` accounting, execution under a configurable
//!   [`Executor`](wpinq::plan::Executor), an audit log of every admitted plan, and a
//!   JSON front door ([`MeasurementService::handle_json`]).
//! * [`ServiceClient`] — the analyst side: typed `Plan<T>` in, typed release out, with
//!   only JSON strings in between (the same bytes a socket transport would carry; the
//!   `wpinq-service` binary serves exactly these envelopes over stdin/stdout).
//! * [`release`] — the canonical, bit-exact release encoding shared by both sides.
//!
//! **Determinism guarantee** (property-tested in `tests/`): for a fixed RNG state, a
//! plan measured through the service — serialize, parse, validate, rebuild dynamically,
//! optimize, evaluate, release — produces a byte-identical release to the same plan
//! measured locally in its typed form, under every executor (sequential, 2-shard,
//! 8-shard) and optimize level. Releases are a pure function of (plan, data, ε, RNG
//! state); transport and representation leave no fingerprint.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod release;
pub mod service;

pub use client::{ClientError, ServiceClient, TypedRelease};
pub use release::{release_records_json, release_to_json, release_values_to_json};
pub use service::{
    MeasureRequest, MeasureResponse, MeasurementService, ServiceError, REQUEST_HEADER,
    REQUEST_VERSION,
};
