//! The `wpinq-service` binary: a measurement server speaking newline-delimited JSON.
//!
//! Modes:
//!
//! * `wpinq-service --demo` (default) — registers a small built-in graph, grants the
//!   `demo` analyst a budget, measures the degree-CCDF workload through the JSON front
//!   door, and prints the request, the response, and the audit log. Deterministic
//!   (fixed seed), so it doubles as a CI smoke test of the whole service path.
//! * `wpinq-service --serve` — reads one [`MeasureRequest`](wpinq_service::MeasureRequest)
//!   envelope per stdin line and writes one response envelope per stdout line. Datasets
//!   and grants come from `--demo`-style built-ins; a production deployment would load
//!   them from its own storage. The noise RNG is seeded from `/dev/urandom` — the seed
//!   is the curator's secret and never leaves the process (the server refuses to start
//!   without an entropy source).

use std::io::{BufRead, Write};

use rand::rngs::StdRng;
use rand::SeedableRng;

use wpinq::plan::executor_for_threads;
use wpinq::{Expr, Plan, PrivacyBudget, WeightedDataset};
use wpinq_service::MeasurementService;

/// The built-in demo graph: a triangle with a tail plus a 4-cycle, as symmetric
/// directed edges.
fn demo_edges() -> WeightedDataset<(u32, u32)> {
    let undirected = [
        (0u32, 1u32),
        (1, 2),
        (0, 2),
        (2, 3),
        (4, 5),
        (5, 6),
        (6, 7),
        (7, 4),
    ];
    WeightedDataset::from_records(undirected.iter().flat_map(|&(a, b)| [(a, b), (b, a)]))
}

/// The degree-CCDF workload in expression form (the same definition
/// `wpinq_analyses::degree::degree_ccdf_plan_expr` builds).
fn degree_ccdf_plan() -> Plan<u64> {
    let edges = Plan::<(u32, u32)>::source_expr("edges");
    edges
        .select_expr::<u32>(Expr::input().field(0))
        .shave_const(1.0)
        .select_expr::<u64>(Expr::input().field(1))
}

fn build_service() -> MeasurementService {
    let mut service = MeasurementService::new()
        .with_executor(executor_for_threads(wpinq::plan::available_threads()));
    service
        .register("edges", &demo_edges())
        .expect("demo dataset registers");
    service
        .grant("demo", "edges", PrivacyBudget::new(10.0))
        .expect("demo grant");
    service
}

fn run_demo() {
    let service = build_service();
    let plan = degree_ccdf_plan();
    let spec = plan.to_spec().expect("expression-built plan serializes");
    let request = wpinq_service::MeasureRequest {
        analyst: "demo".into(),
        epsilon: 0.5,
        spec,
    };
    let request_json = request.to_json_string();
    println!("--- request ---");
    println!("{request_json}");

    let mut rng = StdRng::seed_from_u64(42);
    let response = service.handle_json(&request_json, &mut rng);
    println!("--- response ---");
    println!("{response}");

    println!("--- audit log ---");
    for entry in service.audit_log() {
        println!("{entry}");
    }
    println!(
        "--- budget remaining for demo@edges: {} ---",
        service.remaining("demo", "edges").unwrap_or(f64::NAN)
    );
    assert!(
        response.contains("\"ok\":true"),
        "demo measurement must succeed"
    );
}

/// An unpredictable noise seed from the OS entropy pool. Differential privacy stands or
/// falls with this: a guessable seed (e.g. the wall clock) would let an analyst replay
/// the Laplace stream and de-noise every release.
fn entropy_seed() -> u64 {
    use std::io::Read;
    let mut bytes = [0u8; 8];
    match std::fs::File::open("/dev/urandom").and_then(|mut f| f.read_exact(&mut bytes)) {
        Ok(()) => u64::from_le_bytes(bytes),
        Err(e) => {
            // No entropy device (non-unix dev box): refuse to serve rather than hand
            // out breakable noise.
            eprintln!("cannot read /dev/urandom for the noise seed: {e}");
            std::process::exit(1);
        }
    }
}

fn run_serve() {
    let service = build_service();
    let mut rng = StdRng::seed_from_u64(entropy_seed());
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = service.handle_json(&line, &mut rng);
        if writeln!(out, "{response}")
            .and_then(|_| out.flush())
            .is_err()
        {
            break;
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--demo") => run_demo(),
        Some("--serve") => run_serve(),
        Some(other) => {
            eprintln!("unknown mode '{other}'; use --demo (default) or --serve");
            std::process::exit(2);
        }
    }
}
