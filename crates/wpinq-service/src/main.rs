//! The `wpinq-service` binary: a measurement server speaking newline-delimited JSON.
//!
//! Modes:
//!
//! * `wpinq-service --demo` (default) — registers a small built-in graph, grants the
//!   `demo` analyst a budget, measures the degree-CCDF workload through the JSON front
//!   door, and prints the request, the response, and the audit log. Deterministic
//!   (fixed seed), so it doubles as a CI smoke test of the whole service path.
//! * `wpinq-service --serve` — reads one [`MeasureRequest`](wpinq_service::MeasureRequest)
//!   envelope per stdin line and writes one response envelope per stdout line.
//! * `wpinq-service --listen <addr>` — the same envelopes over TCP: an accept loop and
//!   a worker threadpool share one `MeasurementService`, so concurrent analysts are
//!   served in parallel (budget debits stay all-or-nothing; identical repeats hit the
//!   measurement cache). `<addr>` like `127.0.0.1:7878`.
//! * `wpinq-service --tcp-demo` — starts a loopback server on an OS-chosen port, runs
//!   the demo workload through a real TCP client twice, and asserts the repeat came
//!   back byte-identical with zero extra ε charged. The CI TCP smoke step.
//! * `wpinq-service --metrics-demo` — starts a loopback server *and* the Prometheus
//!   metrics endpoint, drives a traced measurement and an `{"op":"stats"}` request
//!   through TCP, scrapes the endpoint, and asserts the core metric families are
//!   present. The CI observability smoke step.
//!
//! `--listen` additionally accepts `--metrics-addr <addr>` to serve the Prometheus
//! text exposition endpoint on a second listener (e.g. `--metrics-addr
//! 127.0.0.1:9090`).
//!
//! Datasets and grants come from `--demo`-style built-ins; a production deployment
//! would load them from its own storage. The serving modes seed the noise RNG from
//! `/dev/urandom` — the seed is the curator's secret and never leaves the process (the
//! server refuses to start without an entropy source).

use std::io::{BufRead, Write};
use std::sync::Arc;

use wpinq::plan::executor_for_threads;
use wpinq::{Expr, Plan, PrivacyBudget, WeightedDataset};
use wpinq_service::{Client, MeasurementService, Tcp};

/// The built-in demo graph: a triangle with a tail plus a 4-cycle, as symmetric
/// directed edges.
fn demo_edges() -> WeightedDataset<(u32, u32)> {
    let undirected = [
        (0u32, 1u32),
        (1, 2),
        (0, 2),
        (2, 3),
        (4, 5),
        (5, 6),
        (6, 7),
        (7, 4),
    ];
    WeightedDataset::from_records(undirected.iter().flat_map(|&(a, b)| [(a, b), (b, a)]))
}

/// The degree-CCDF workload in expression form (the same definition
/// `wpinq_analyses::degree::degree_ccdf_plan_expr` builds).
fn degree_ccdf_plan() -> Plan<u64> {
    let edges = Plan::<(u32, u32)>::source_expr("edges");
    edges
        .select_expr::<u32>(Expr::input().field(0))
        .shave_const(1.0)
        .select_expr::<u64>(Expr::input().field(1))
}

fn build_service(noise_seed: Option<u64>) -> MeasurementService {
    let mut service = MeasurementService::new()
        .with_executor(executor_for_threads(wpinq::plan::available_threads()));
    if let Some(seed) = noise_seed {
        service = service.with_noise_seed(seed);
    }
    service
        .register("edges", &demo_edges())
        .expect("demo dataset registers");
    service
        .grant("demo", "edges", PrivacyBudget::new(10.0))
        .expect("demo grant");
    service
}

fn run_demo() {
    let service = build_service(Some(42));
    let plan = degree_ccdf_plan();
    let spec = plan.to_spec().expect("expression-built plan serializes");
    let request = wpinq_service::MeasureRequest {
        analyst: "demo".into(),
        epsilon: 0.5,
        spec,
        id: Some("demo-1".into()),
        trace: false,
        encoding: wpinq_service::ResponseEncoding::Json,
    };
    let request_json = request.to_json_string();
    println!("--- request ---");
    println!("{request_json}");

    let response = service.handle_line(&request_json);
    println!("--- response ---");
    println!("{response}");

    println!("--- audit log ---");
    for entry in service.audit_log() {
        println!("{entry}");
    }
    println!(
        "--- budget remaining for demo@edges: {} ---",
        service.remaining("demo", "edges").unwrap_or(f64::NAN)
    );
    assert!(
        response.contains("\"ok\":true"),
        "demo measurement must succeed"
    );
    assert!(
        response.contains("\"id\":\"demo-1\""),
        "response must echo the request id"
    );
}

/// An unpredictable noise seed from the OS entropy pool. Differential privacy stands or
/// falls with this: a guessable seed (e.g. the wall clock) would let an analyst replay
/// the Laplace stream and de-noise every release.
fn entropy_seed() -> u64 {
    use std::io::Read;
    let mut bytes = [0u8; 8];
    match std::fs::File::open("/dev/urandom").and_then(|mut f| f.read_exact(&mut bytes)) {
        Ok(()) => u64::from_le_bytes(bytes),
        Err(e) => {
            // No entropy device (non-unix dev box): refuse to serve rather than hand
            // out breakable noise.
            eprintln!("cannot read /dev/urandom for the noise seed: {e}");
            std::process::exit(1);
        }
    }
}

fn run_serve() {
    let service = build_service(Some(entropy_seed()));
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let response = service.handle_line(&line);
        if writeln!(out, "{response}")
            .and_then(|_| out.flush())
            .is_err()
        {
            break;
        }
    }
}

fn run_listen(addr: &str, metrics_addr: Option<&str>) {
    let service = Arc::new(build_service(Some(entropy_seed())));
    let workers = wpinq::plan::available_threads().max(2);
    let handle = match wpinq_service::serve_tcp(service.clone(), addr, workers) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("cannot listen on {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {} ({workers} workers)", handle.local_addr());
    let _metrics_handle = metrics_addr.map(|metrics_addr| {
        match wpinq_service::serve_metrics(service, metrics_addr) {
            Ok(handle) => {
                println!("metrics on http://{}/metrics", handle.local_addr());
                handle
            }
            Err(e) => {
                eprintln!("cannot serve metrics on {metrics_addr}: {e}");
                std::process::exit(1);
            }
        }
    });
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

/// Scrapes `addr` once over plain HTTP and returns the exposition body.
fn scrape_metrics(addr: std::net::SocketAddr) -> String {
    use std::io::Read;
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to metrics endpoint");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .expect("send scrape");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("read scrape response");
    assert!(
        response.starts_with("HTTP/1.1 200 OK"),
        "metrics endpoint must answer 200, got: {}",
        response.lines().next().unwrap_or("")
    );
    let body_start = response
        .find("\r\n\r\n")
        .expect("scrape response has a header/body split");
    response[body_start + 4..].to_string()
}

fn run_metrics_demo() {
    let service = Arc::new(build_service(Some(entropy_seed())));
    let handle =
        wpinq_service::serve_tcp(service.clone(), "127.0.0.1:0", 4).expect("loopback server");
    let metrics = wpinq_service::serve_metrics(service.clone(), "127.0.0.1:0")
        .expect("loopback metrics endpoint");
    println!(
        "metrics-demo server on {}, metrics on {}",
        handle.local_addr(),
        metrics.local_addr()
    );

    // One traced measurement through real TCP: the trace must ride the response.
    let plan = degree_ccdf_plan();
    let mut request = wpinq_service::MeasureRequest {
        analyst: "demo".into(),
        epsilon: 0.5,
        spec: plan.to_spec().expect("expression-built plan serializes"),
        id: Some("metrics-smoke".into()),
        trace: true,
        encoding: wpinq_service::ResponseEncoding::Json,
    };
    use wpinq_service::Transport;
    let tcp = Tcp::new(handle.local_addr().to_string());
    let traced = tcp
        .roundtrip(&request.to_json_string())
        .expect("traced measurement");
    assert!(
        traced.contains("\"ok\":true"),
        "measurement failed: {traced}"
    );
    assert!(
        traced.contains("\"trace\":") && traced.contains("\"spans\":"),
        "trace:true response must carry the trace"
    );
    assert!(
        traced.contains("\"analyze\""),
        "the trace must embed the EXPLAIN ANALYZE report"
    );
    // The identical request without the flag must release the very same bytes (the
    // flag is not part of the cache key, so this replays the cached measurement).
    request.trace = false;
    let untraced = tcp
        .roundtrip(&request.to_json_string())
        .expect("untraced repeat");
    assert!(
        !untraced.contains("\"trace\":"),
        "untraced response stays clean"
    );

    // The stats sideband op answers with the registry as JSON.
    let stats = tcp.roundtrip("{\"op\":\"stats\"}").expect("stats op");
    assert!(
        stats.contains("\"ok\":true") && stats.contains("\"stats\":"),
        "stats op must answer with the registry: {stats}"
    );
    assert!(
        stats.contains("wpinq_requests_total"),
        "stats carries request counts"
    );

    // The Prometheus endpoint exposes every core family.
    let body = scrape_metrics(metrics.local_addr());
    for family in [
        "# TYPE wpinq_requests_total counter",
        "# TYPE wpinq_request_latency_ms histogram",
        "wpinq_request_latency_ms_bucket{le=\"+Inf\"}",
        "wpinq_cache_hits_total",
        "wpinq_cache_misses_total",
        "wpinq_budget_epsilon_spent",
        "wpinq_budget_epsilon_remaining",
    ] {
        assert!(
            body.contains(family),
            "scrape is missing '{family}':\n{body}"
        );
    }
    println!("ok: traced response, stats op, and Prometheus scrape all check out");
    metrics.shutdown();
    handle.shutdown();
}

fn run_tcp_demo() {
    let service = Arc::new(build_service(Some(entropy_seed())));
    let handle =
        wpinq_service::serve_tcp(service.clone(), "127.0.0.1:0", 4).expect("loopback server");
    let addr = handle.local_addr();
    println!("tcp-demo server on {addr}");

    let client = Client::new(Tcp::new(addr.to_string()), "demo");
    let plan = degree_ccdf_plan();
    let first = client
        .measure_with_id(&plan, 0.5, Some("smoke".into()))
        .expect("first TCP measurement");
    let spent_after_first = 10.0 - service.remaining("demo", "edges").expect("grant exists");
    let second = client
        .measure_with_id(&plan, 0.5, Some("smoke".into()))
        .expect("repeated TCP measurement");
    let spent_after_second = 10.0 - service.remaining("demo", "edges").expect("grant exists");

    assert_eq!(
        first.raw, second.raw,
        "identical repeat must be byte-identical"
    );
    assert!(
        (spent_after_second - spent_after_first).abs() < 1e-12,
        "cached repeat must charge zero epsilon"
    );
    println!(
        "ok: {} released records, {} epsilon charged once, repeat byte-identical from cache \
         (hits={})",
        first.records.len(),
        spent_after_first,
        service.cache_stats().hits
    );
    handle.shutdown();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--demo") => run_demo(),
        Some("--serve") => run_serve(),
        Some("--listen") => match args.get(1) {
            Some(addr) => {
                let metrics_addr = args
                    .iter()
                    .position(|a| a == "--metrics-addr")
                    .and_then(|i| args.get(i + 1))
                    .map(String::as_str);
                run_listen(addr, metrics_addr)
            }
            None => {
                eprintln!("--listen needs an address, e.g. --listen 127.0.0.1:7878");
                std::process::exit(2);
            }
        },
        Some("--tcp-demo") => run_tcp_demo(),
        Some("--metrics-demo") => run_metrics_demo(),
        Some(other) => {
            eprintln!(
                "unknown mode '{other}'; use --demo (default), --serve, --listen <addr> \
                 [--metrics-addr <addr>], --tcp-demo, or --metrics-demo"
            );
            std::process::exit(2);
        }
    }
}
