//! Canonical encoding of noisy releases.
//!
//! Releases cross the trust boundary as JSON: a sorted array of `[record, value]` pairs.
//! Records encode through [`value_to_json`]; noisy values print with Rust's
//! shortest-round-trip float formatter, so the encoding is **deterministic and
//! bit-exact**: two releases are byte-equal iff every noisy value matches bitwise. The
//! byte-identical-release property tests (typed plan vs. wire-shipped plan, sequential
//! vs. sharded executors) compare exactly these strings.

use wpinq::value::{ExprRecord, Value, ValueType};
use wpinq::NoisyCounts;
use wpinq_expr::{value_from_json, value_to_json, Json, WireError};

/// Encodes the observed part of a typed release (sorted record order).
pub fn release_to_json<T: ExprRecord>(counts: &NoisyCounts<T>) -> String {
    let records: Vec<(Value, f64)> = counts
        .sorted_observed()
        .into_iter()
        .map(|(record, value)| (record.to_value(), value))
        .collect();
    release_records_json(&records).to_compact()
}

/// Encodes the observed part of a dynamic release (sorted record order).
pub fn release_values_to_json(counts: &NoisyCounts<Value>) -> String {
    release_records_json(&counts.sorted_observed()).to_compact()
}

/// The release array document for already-sorted `(record, noisy value)` pairs.
pub fn release_records_json(records: &[(Value, f64)]) -> Json {
    Json::Arr(
        records
            .iter()
            .map(|(record, value)| Json::Arr(vec![value_to_json(record), Json::f64(*value)]))
            .collect(),
    )
}

/// Extracts a successful envelope's release records under either negotiated encoding:
/// the default `"release"` JSON array, or `"release_columnar"` — a base64 colwire frame
/// whose decoded records must carry the envelope's `output_type`. Both paths are
/// bit-exact, so the records are identical whichever encoding the request asked for.
pub fn release_records_from_response(
    response: &Json,
    ty: &ValueType,
) -> Result<Vec<(Value, f64)>, WireError> {
    if let Some(release) = response.get("release") {
        return release_records_from_json(release, ty);
    }
    let text = response
        .get("release_columnar")
        .and_then(Json::as_str)
        .ok_or_else(|| WireError::new("response missing 'release' / 'release_columnar'"))?;
    let frame = wpinq_core::colwire::from_base64(text)
        .map_err(|e| WireError::new(format!("release_columnar: {e}")))?;
    let batch = wpinq_core::colwire::decode_batch(&frame)
        .map_err(|e| WireError::new(format!("release_columnar: {e}")))?;
    if batch.ty() != ty {
        return Err(WireError::new(format!(
            "release_columnar records have type {}, expected {ty}",
            batch.ty()
        )));
    }
    Ok(batch.to_pairs())
}

/// Decodes a release array against the expected record type.
pub fn release_records_from_json(
    json: &Json,
    ty: &ValueType,
) -> Result<Vec<(Value, f64)>, WireError> {
    json.as_arr()
        .ok_or_else(|| WireError::new("release must be a JSON array"))?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| WireError::new("release entry must be a [record, value] pair"))?;
            let record = value_from_json(&pair[0], ty)?;
            let value = pair[1]
                .as_f64()
                .ok_or_else(|| WireError::new("release value must be a number"))?;
            Ok((record, value))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wpinq::WeightedDataset;

    #[test]
    fn typed_and_dynamic_encodings_agree_byte_for_byte() {
        let typed: WeightedDataset<(u32, u64)> =
            WeightedDataset::from_pairs([((3, 1), 2.0), ((1, 9), 0.5), ((2, 2), -1.25)]);
        let dynamic = wpinq::plan::dataset_to_values(&typed);
        let a = release_to_json(&NoisyCounts::measure(
            &typed,
            0.5,
            &mut StdRng::seed_from_u64(7),
        ));
        let b = release_values_to_json(&NoisyCounts::measure(
            &dynamic,
            0.5,
            &mut StdRng::seed_from_u64(7),
        ));
        assert_eq!(a, b);

        // And the encoding round-trips exactly.
        let ty = <(u32, u64)>::value_type();
        let parsed = Json::parse(&a).unwrap();
        let records = release_records_from_json(&parsed, &ty).unwrap();
        assert_eq!(release_records_json(&records).to_compact(), a);
    }
}
