//! The analyst-side client: typed plans in, typed noisy releases out, with **only JSON
//! text** crossing the boundary in between.
//!
//! [`ServiceClient::measure`] serializes a typed expression-built [`Plan<T>`] to its
//! [`PlanSpec`] wire form, submits the request through the service's JSON front door
//! ([`MeasurementService::handle_json`] — the same code path a network transport would
//! call), and decodes the response back into typed records. Running the round trip
//! through strings in-process is deliberate: every test that passes here would pass
//! unchanged over a socket.

use rand::Rng;

use wpinq::value::ExprRecord;
use wpinq::Plan;
use wpinq_expr::{Json, PlanSpec, WireError};

use crate::release::release_records_from_json;
use crate::service::{response_output_type, MeasureRequest, MeasurementService};

/// A typed view of a successful measurement response.
#[derive(Debug)]
pub struct TypedRelease<T: ExprRecord> {
    /// The measurement ε.
    pub epsilon: f64,
    /// Noisy counts in sorted record order.
    pub records: Vec<(T, f64)>,
    /// Per-dataset ε charged.
    pub charged: Vec<(String, f64)>,
    /// Per-dataset budget remaining after the charge.
    pub remaining: Vec<(String, f64)>,
    /// The analyst-visible plan the service logged.
    pub explain: String,
    /// The raw response bytes (useful for byte-equality assertions).
    pub raw: String,
}

impl<T: ExprRecord> TypedRelease<T> {
    /// The noisy count of `record`, `0.0`-centred noise excluded — absent records were
    /// simply not observed (query the service again at the record's key if needed).
    pub fn get(&self, record: &T) -> Option<f64> {
        self.records
            .iter()
            .find(|(r, _)| r == record)
            .map(|(_, v)| *v)
    }
}

/// Why a client-side measurement failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The plan carries closure-built payloads and cannot be serialized.
    NotSerializable,
    /// The service rejected the request (message from the response envelope).
    Rejected(String),
    /// The response could not be decoded.
    Wire(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::NotSerializable => write!(
                f,
                "plan contains closure-built payloads; build it with the *_expr \
                 constructors to ship it"
            ),
            ClientError::Rejected(msg) => write!(f, "service rejected the request: {msg}"),
            ClientError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// An in-process client bound to one service and one analyst identity.
pub struct ServiceClient<'a> {
    service: &'a MeasurementService,
    analyst: String,
}

impl<'a> ServiceClient<'a> {
    /// A client speaking for `analyst`.
    pub fn new(service: &'a MeasurementService, analyst: impl Into<String>) -> Self {
        ServiceClient {
            service,
            analyst: analyst.into(),
        }
    }

    /// Serializes `plan`, submits it at `epsilon`, and decodes the typed release.
    ///
    /// `rng` is the **service's** noise source; in production it lives on the trusted
    /// side and is never shared with analysts (tests pin it for reproducibility).
    pub fn measure<T: ExprRecord, R: Rng + ?Sized>(
        &self,
        plan: &Plan<T>,
        epsilon: f64,
        rng: &mut R,
    ) -> Result<TypedRelease<T>, ClientError> {
        let spec = plan.to_spec().ok_or(ClientError::NotSerializable)?;
        self.measure_spec(spec, epsilon, rng)
    }

    /// [`measure`](Self::measure) for an already-serialized plan.
    pub fn measure_spec<T: ExprRecord, R: Rng + ?Sized>(
        &self,
        spec: PlanSpec,
        epsilon: f64,
        rng: &mut R,
    ) -> Result<TypedRelease<T>, ClientError> {
        let request = MeasureRequest {
            analyst: self.analyst.clone(),
            epsilon,
            spec,
        };
        let raw = self.service.handle_json(&request.to_json_string(), rng);
        let response = Json::parse(&raw).map_err(|e| WireError::new(e.to_string()))?;
        if response.get("ok").and_then(Json::as_bool) != Some(true) {
            let message = response
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("malformed error response")
                .to_string();
            return Err(ClientError::Rejected(message));
        }
        let output_type = response_output_type(&response)?;
        if output_type != T::value_type() {
            return Err(ClientError::Wire(WireError::new(format!(
                "response records have type {output_type}, expected {}",
                T::value_type()
            ))));
        }
        let release = response
            .get("release")
            .ok_or_else(|| WireError::new("response missing 'release'"))?;
        let records = release_records_from_json(release, &output_type)?
            .into_iter()
            .map(|(value, noisy)| {
                T::from_value(&value)
                    .map(|record| (record, noisy))
                    .ok_or_else(|| WireError::new("release record does not fit the plan type"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let pairs = |key: &str| -> Result<Vec<(String, f64)>, WireError> {
            response
                .get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| WireError::new(format!("response missing '{key}'")))?
                .iter()
                .map(|pair| {
                    let pair = pair
                        .as_arr()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| WireError::new(format!("malformed '{key}' entry")))?;
                    let name = pair[0]
                        .as_str()
                        .ok_or_else(|| WireError::new(format!("malformed '{key}' name")))?;
                    let eps = pair[1]
                        .as_f64()
                        .ok_or_else(|| WireError::new(format!("malformed '{key}' value")))?;
                    Ok((name.to_string(), eps))
                })
                .collect()
        };
        Ok(TypedRelease {
            epsilon,
            records,
            charged: pairs("charged")?,
            remaining: pairs("remaining")?,
            explain: response
                .get("explain")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            raw,
        })
    }
}
