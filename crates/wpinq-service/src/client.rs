//! The analyst-side client: typed plans in, typed noisy releases out, with **only JSON
//! text** crossing the boundary in between.
//!
//! [`Client`] is generic over a [`Transport`]: the same typed `measure::<T>` code drives
//! an in-process service ([`InProcess`](crate::transport::InProcess)) and a network one
//! ([`Tcp`](crate::transport::Tcp)) — every test that passes in-process passes unchanged
//! over a socket, because the transport carries the very same envelope bytes. Each
//! request is stamped with a correlation id (echoed by a v2 server) unless the caller
//! supplies or suppresses one via [`Client::measure_with_id`].
//!
//! The pre-transport [`ServiceClient`] remains as a deprecated shim for callers that
//! drive the service with their own noise RNG (the deterministic replay path).

use std::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;

use wpinq::value::ExprRecord;
use wpinq::Plan;
use wpinq_expr::{Json, PlanSpec, WireError};

use crate::release::release_records_from_response;
use crate::service::{response_output_type, MeasureRequest, MeasurementService, ResponseEncoding};
use crate::transport::Transport;

/// A typed view of a successful measurement response.
#[derive(Debug)]
pub struct TypedRelease<T: ExprRecord> {
    /// The measurement ε.
    pub epsilon: f64,
    /// Noisy counts in sorted record order.
    pub records: Vec<(T, f64)>,
    /// Per-dataset ε charged.
    pub charged: Vec<(String, f64)>,
    /// Per-dataset budget remaining after the charge (as of first computation, when the
    /// response was served from the measurement cache).
    pub remaining: Vec<(String, f64)>,
    /// The analyst-visible plan the service logged.
    pub explain: String,
    /// The correlation id the server echoed, when the request carried one.
    pub id: Option<String>,
    /// The raw response bytes (useful for byte-equality assertions).
    pub raw: String,
}

impl<T: ExprRecord> TypedRelease<T> {
    /// The noisy count of `record`, `0.0`-centred noise excluded — absent records were
    /// simply not observed (query the service again at the record's key if needed).
    pub fn get(&self, record: &T) -> Option<f64> {
        self.records
            .iter()
            .find(|(r, _)| r == record)
            .map(|(_, v)| *v)
    }
}

/// Why a client-side measurement failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientError {
    /// The plan carries closure-built payloads and cannot be serialized.
    NotSerializable,
    /// The service rejected the request. `code` is the stable machine-readable
    /// [`ServiceError::code`](crate::ServiceError::code) (`"unknown"` for a pre-v2
    /// server that sent only a message).
    Rejected {
        /// The stable error code from the response envelope.
        code: String,
        /// The human-readable message from the response envelope.
        message: String,
    },
    /// The transport failed to deliver the request or the response.
    Transport(String),
    /// The response could not be decoded.
    Wire(WireError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::NotSerializable => write!(
                f,
                "plan contains closure-built payloads; build it with the *_expr \
                 constructors to ship it"
            ),
            ClientError::Rejected { code, message } => {
                write!(f, "service rejected the request [{code}]: {message}")
            }
            ClientError::Transport(msg) => write!(f, "transport failure: {msg}"),
            ClientError::Wire(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Decodes one response envelope into a typed release. Understands both the v2 error
/// shape (`"error":{"code":…,"message":…}`) and the legacy v1 plain-string form.
pub(crate) fn decode_response<T: ExprRecord>(
    raw: String,
    epsilon: f64,
) -> Result<TypedRelease<T>, ClientError> {
    let response = Json::parse(&raw).map_err(|e| WireError::new(e.to_string()))?;
    if response.get("ok").and_then(Json::as_bool) != Some(true) {
        let error = response.get("error");
        let code = error
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let message = error
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .or_else(|| error.and_then(Json::as_str))
            .unwrap_or("malformed error response")
            .to_string();
        return Err(ClientError::Rejected { code, message });
    }
    let output_type = response_output_type(&response)?;
    if output_type != T::value_type() {
        return Err(ClientError::Wire(WireError::new(format!(
            "response records have type {output_type}, expected {}",
            T::value_type()
        ))));
    }
    let records = release_records_from_response(&response, &output_type)?
        .into_iter()
        .map(|(value, noisy)| {
            T::from_value(&value)
                .map(|record| (record, noisy))
                .ok_or_else(|| WireError::new("release record does not fit the plan type"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let pairs = |key: &str| -> Result<Vec<(String, f64)>, WireError> {
        response
            .get(key)
            .and_then(Json::as_arr)
            .ok_or_else(|| WireError::new(format!("response missing '{key}'")))?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_arr()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| WireError::new(format!("malformed '{key}' entry")))?;
                let name = pair[0]
                    .as_str()
                    .ok_or_else(|| WireError::new(format!("malformed '{key}' name")))?;
                let eps = pair[1]
                    .as_f64()
                    .ok_or_else(|| WireError::new(format!("malformed '{key}' value")))?;
                Ok((name.to_string(), eps))
            })
            .collect()
    };
    Ok(TypedRelease {
        epsilon,
        records,
        charged: pairs("charged")?,
        remaining: pairs("remaining")?,
        explain: response
            .get("explain")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string(),
        id: response
            .get("id")
            .and_then(Json::as_str)
            .map(str::to_string),
        raw,
    })
}

/// A transport-agnostic analyst client bound to one analyst identity.
///
/// Cheap per-call state only: plans serialize to [`PlanSpec`] envelopes, the transport
/// carries the bytes, and responses decode back to typed records. The client is
/// `Send + Sync` whenever its transport is, so one client can serve many analyst
/// threads (each request is independent).
pub struct Client<T: Transport> {
    transport: T,
    analyst: String,
    trace: bool,
    encoding: ResponseEncoding,
    next_id: AtomicU64,
}

impl<T: Transport> Client<T> {
    /// A client speaking for `analyst` over `transport`.
    pub fn new(transport: T, analyst: impl Into<String>) -> Self {
        Client {
            transport,
            analyst: analyst.into(),
            trace: false,
            encoding: ResponseEncoding::Json,
            next_id: AtomicU64::new(1),
        }
    }

    /// Stamps every subsequent request with `"trace": true`, so the server attaches its
    /// per-request trace to each response (readable off [`TypedRelease::raw`]). The flag
    /// never perturbs the release: traced and untraced requests share one cache key and
    /// release byte-identical payloads.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Selects the release encoding subsequent responses carry (the decoder understands
    /// both, so this only changes the wire bytes — the decoded records are identical
    /// under either encoding, and the cache key is unaffected).
    pub fn with_encoding(mut self, encoding: ResponseEncoding) -> Self {
        self.encoding = encoding;
        self
    }

    /// The underlying transport.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// Serializes `plan`, submits it at `epsilon`, and decodes the typed release. The
    /// request is stamped with a fresh `analyst-N` correlation id.
    pub fn measure<R: ExprRecord>(
        &self,
        plan: &Plan<R>,
        epsilon: f64,
    ) -> Result<TypedRelease<R>, ClientError> {
        let id = format!(
            "{}-{}",
            self.analyst,
            self.next_id.fetch_add(1, Ordering::Relaxed)
        );
        self.measure_with_id(plan, epsilon, Some(id))
    }

    /// [`measure`](Self::measure) with an explicit correlation id (or none). Replaying
    /// the *same* plan, ε, and id produces byte-identical request lines — and, against
    /// a caching service, byte-identical response lines.
    pub fn measure_with_id<R: ExprRecord>(
        &self,
        plan: &Plan<R>,
        epsilon: f64,
        id: Option<String>,
    ) -> Result<TypedRelease<R>, ClientError> {
        let spec = plan.to_spec().ok_or(ClientError::NotSerializable)?;
        self.measure_spec_with_id(spec, epsilon, id)
    }

    /// [`measure_with_id`](Self::measure_with_id) for an already-serialized plan.
    pub fn measure_spec_with_id<R: ExprRecord>(
        &self,
        spec: PlanSpec,
        epsilon: f64,
        id: Option<String>,
    ) -> Result<TypedRelease<R>, ClientError> {
        let request = MeasureRequest {
            analyst: self.analyst.clone(),
            epsilon,
            spec,
            id,
            trace: self.trace,
            encoding: self.encoding,
        };
        let raw = self.transport.roundtrip(&request.to_json_string())?;
        decode_response(raw, epsilon)
    }
}

/// An in-process client bound to one service and one analyst identity, driving the
/// service with a **caller-supplied** noise RNG (the deterministic, cache-bypassing
/// path). Superseded by [`Client`] over an
/// [`InProcess`](crate::transport::InProcess) transport for everything except replay
/// tests that must pin the noise stream.
pub struct ServiceClient<'a> {
    service: &'a MeasurementService,
    analyst: String,
}

impl<'a> ServiceClient<'a> {
    /// A client speaking for `analyst`.
    #[deprecated(
        since = "0.2.0",
        note = "use `Client::new(InProcess::new(service), analyst)` unless the caller \
                must control the noise RNG"
    )]
    pub fn new(service: &'a MeasurementService, analyst: impl Into<String>) -> Self {
        ServiceClient {
            service,
            analyst: analyst.into(),
        }
    }

    /// Serializes `plan`, submits it at `epsilon`, and decodes the typed release.
    ///
    /// `rng` is the **service's** noise source; in production it lives on the trusted
    /// side and is never shared with analysts (tests pin it for reproducibility).
    pub fn measure<T: ExprRecord, R: Rng + ?Sized>(
        &self,
        plan: &Plan<T>,
        epsilon: f64,
        rng: &mut R,
    ) -> Result<TypedRelease<T>, ClientError> {
        let spec = plan.to_spec().ok_or(ClientError::NotSerializable)?;
        self.measure_spec(spec, epsilon, rng)
    }

    /// [`measure`](Self::measure) for an already-serialized plan.
    pub fn measure_spec<T: ExprRecord, R: Rng + ?Sized>(
        &self,
        spec: PlanSpec,
        epsilon: f64,
        rng: &mut R,
    ) -> Result<TypedRelease<T>, ClientError> {
        let request = MeasureRequest {
            analyst: self.analyst.clone(),
            epsilon,
            spec,
            id: None,
            trace: false,
            encoding: ResponseEncoding::Json,
        };
        let raw = self.service.handle_json(&request.to_json_string(), rng);
        decode_response(raw, epsilon)
    }
}
