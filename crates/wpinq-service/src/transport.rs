//! Transports: how request envelopes reach a [`MeasurementService`] and responses come
//! back.
//!
//! The wire contract is one newline-delimited JSON envelope per request and per
//! response (PROTOCOL.md); *how* the lines travel is a [`Transport`]. Two are provided:
//!
//! * [`InProcess`] — an `Arc<MeasurementService>` called directly; the same bytes a
//!   socket would carry, with zero copies of anything else. The default for tests and
//!   embedded curators.
//! * [`Tcp`] — a `std::net` client holding one persistent connection (lazily opened,
//!   re-opened after an error).
//!
//! The server side is [`serve_tcp`]: a `std::net` accept loop feeding a fixed pool of
//! named worker threads over an mpsc channel — the same hand-rolled scoped-worker idiom
//! as `wpinq_core::shard::WorkerPool`, adapted to long-lived connections (the pool's
//! blocking `map` would hold a worker hostage per idle socket). No async runtime: the
//! vendored world has none, and a thread per active connection is exactly the right
//! cost model for a curator serving tens of analysts, not millions.
//!
//! Concurrency safety is the service's job, not the transport's: workers share one
//! `Arc<MeasurementService>` and call [`handle_line`](MeasurementService::handle_line)
//! with no transport-level locking.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::client::ClientError;
use crate::service::MeasurementService;

/// How long a server worker waits on an idle socket before re-checking the shutdown
/// flag. Bounds shutdown latency; invisible to clients otherwise.
const IDLE_POLL: Duration = Duration::from_millis(50);

/// A bidirectional line transport: one request envelope in, one response envelope out.
///
/// `Send + Sync` so one client can be shared across analyst threads; implementations
/// must keep concurrent round trips independent (the TCP transport serializes on its
/// single connection; in-process round trips run fully parallel).
pub trait Transport: Send + Sync {
    /// Submits one request line and returns the matching response line (no trailing
    /// newline on either side).
    fn roundtrip(&self, request_line: &str) -> Result<String, ClientError>;
}

/// The in-process transport: requests go straight to the service's JSON front door.
#[derive(Clone)]
pub struct InProcess {
    service: Arc<MeasurementService>,
}

impl InProcess {
    /// Wraps a shared service.
    pub fn new(service: Arc<MeasurementService>) -> Self {
        InProcess { service }
    }

    /// The wrapped service (e.g. to inspect its audit log in tests).
    pub fn service(&self) -> &Arc<MeasurementService> {
        &self.service
    }
}

impl Transport for InProcess {
    fn roundtrip(&self, request_line: &str) -> Result<String, ClientError> {
        Ok(self.service.handle_line(request_line))
    }
}

/// The TCP client transport: newline-delimited envelopes over one persistent
/// connection, lazily opened on first use and re-opened after any I/O error.
pub struct Tcp {
    addr: String,
    conn: Mutex<Option<TcpStream>>,
}

impl Tcp {
    /// A transport that will connect to `addr` (e.g. `"127.0.0.1:7878"`) on first use.
    pub fn new(addr: impl Into<String>) -> Self {
        Tcp {
            addr: addr.into(),
            conn: Mutex::new(None),
        }
    }

    fn io_err(context: &str, error: std::io::Error) -> ClientError {
        ClientError::Transport(format!("{context}: {error}"))
    }
}

impl Transport for Tcp {
    fn roundtrip(&self, request_line: &str) -> Result<String, ClientError> {
        let mut conn = self.conn.lock().expect("tcp connection poisoned");
        if conn.is_none() {
            let stream = TcpStream::connect(&self.addr)
                .map_err(|e| Self::io_err(&format!("connect {}", self.addr), e))?;
            // One request per round trip: Nagle coalescing only adds delayed-ACK
            // stalls (~40 ms per exchange) to this protocol, never useful batching.
            let _ = stream.set_nodelay(true);
            *conn = Some(stream);
        }
        let stream = conn.as_mut().expect("just connected");
        let result = (|| {
            // Request and newline in a single write: two small segments would
            // otherwise invite a delayed-ACK stall between them.
            let mut framed = Vec::with_capacity(request_line.len() + 1);
            framed.extend_from_slice(request_line.as_bytes());
            framed.push(b'\n');
            stream
                .write_all(&framed)
                .and_then(|()| stream.flush())
                .map_err(|e| Self::io_err("send request", e))?;
            // Read up to the response's newline, byte-exactly.
            let mut line = Vec::new();
            let mut byte = [0u8; 1];
            loop {
                match stream.read(&mut byte) {
                    Ok(0) => {
                        return Err(ClientError::Transport(
                            "connection closed before a response line".into(),
                        ))
                    }
                    Ok(_) if byte[0] == b'\n' => break,
                    Ok(_) => line.push(byte[0]),
                    Err(e) => return Err(Self::io_err("read response", e)),
                }
            }
            String::from_utf8(line)
                .map_err(|_| ClientError::Transport("response is not UTF-8".into()))
        })();
        if result.is_err() {
            // Drop the broken connection; the next round trip reconnects.
            *conn = None;
        }
        result
    }
}

/// A running TCP measurement server. Dropping the handle (or calling
/// [`shutdown`](Self::shutdown)) stops accepting, drains the workers, and joins every
/// thread; established connections are closed after their current line.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-chosen port when the server was started on
    /// port 0, as the tests and benches do).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the server and joins all of its threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection to our own port.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServerHandle({})", self.addr)
    }
}

/// Starts a TCP measurement server on `addr` with `workers` connection-handling
/// threads (clamped to ≥ 1). Bind to port 0 to let the OS pick a free port — read it
/// back from [`ServerHandle::local_addr`].
pub fn serve_tcp(
    service: Arc<MeasurementService>,
    addr: impl ToSocketAddrs,
    workers: usize,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));

    // The scoped-worker idiom of `wpinq_core::shard::WorkerPool`, with an mpsc queue of
    // connections instead of a blocking map: accepted sockets are handed to whichever
    // worker frees up first.
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..workers.max(1))
        .map(|index| {
            let service = service.clone();
            let rx = rx.clone();
            let shutdown = shutdown.clone();
            std::thread::Builder::new()
                .name(format!("wpinq-svc-worker-{index}"))
                .spawn(move || loop {
                    // Senders dropped (acceptor exited) ⇒ recv errs ⇒ worker exits.
                    let stream = match rx
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .recv()
                    {
                        Ok(stream) => stream,
                        Err(_) => break,
                    };
                    // A panic escaping one connection (a request that trips a bug) must
                    // not kill the worker — a fixed pool would otherwise drain to zero
                    // while the acceptor keeps accepting connections nobody serves. The
                    // service's locks all recover from poisoning, so unwinding past
                    // them is safe to continue from.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        handle_connection(&service, stream, &shutdown);
                    }));
                    if outcome.is_err() {
                        eprintln!(
                            "wpinq-svc-worker-{index}: connection handler panicked; \
                             connection dropped, worker continues"
                        );
                    }
                })
                .expect("spawn server worker")
        })
        .collect();

    let acceptor = {
        let shutdown = shutdown.clone();
        std::thread::Builder::new()
            .name("wpinq-svc-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                // `tx` drops here: workers drain the queue and exit.
            })
            .expect("spawn server acceptor")
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        acceptor: Some(acceptor),
        workers,
    })
}

/// Starts the Prometheus metrics endpoint on `addr`: a second, single-threaded
/// listener answering every HTTP request with the telemetry registry in Prometheus
/// text exposition format (`text/plain; version=0.0.4`). Deliberately minimal — the
/// request line and headers are read and discarded (every path scrapes the same
/// document), which is all a Prometheus scraper needs and keeps the endpoint free of
/// any parsing an operator-side port would not want exposed. Bind to port 0 for an
/// OS-chosen port; read it back from [`ServerHandle::local_addr`].
///
/// [`MeasurementService::sync_metrics`] runs before each render, so per-grant ε gauges
/// and cache-residency are current as of the scrape.
pub fn serve_metrics(
    service: Arc<MeasurementService>,
    addr: impl ToSocketAddrs,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let acceptor = {
        let shutdown = shutdown.clone();
        std::thread::Builder::new()
            .name("wpinq-svc-metrics".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    serve_one_scrape(&service, stream);
                }
            })
            .expect("spawn metrics acceptor")
    };
    Ok(ServerHandle {
        addr,
        shutdown,
        acceptor: Some(acceptor),
        workers: Vec::new(),
    })
}

/// Answers one scrape: drain the HTTP request head (up to the blank line, bounded),
/// write the exposition document, close.
fn serve_one_scrape(service: &MeasurementService, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_nodelay(true);
    let mut head: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 1024];
    // A scraper sends a complete head promptly; cap it so a hostile peer cannot feed
    // an unbounded header stream.
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 16 * 1024 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    service.sync_metrics();
    let body = wpinq_telemetry::registry().render_prometheus();
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream
        .write_all(response.as_bytes())
        .and_then(|()| stream.flush());
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Serves one connection: newline-delimited envelopes in, one response line each out.
/// Reads with a short timeout so an idle connection never blocks server shutdown.
fn handle_connection(service: &MeasurementService, stream: TcpStream, shutdown: &AtomicBool) {
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    // Responses go out as soon as they are written; Nagle would pin every exchange of
    // this one-line-at-a-time protocol to the peer's delayed-ACK timer.
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        // Serve every complete line buffered so far. Partial lines stay in `pending`
        // across reads — a request split over TCP segments is reassembled, never lost.
        while let Some(end) = pending.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = pending.drain(..=end).collect();
            let Ok(text) = std::str::from_utf8(&line[..end]) else {
                return; // Non-UTF-8 request: drop the connection.
            };
            if text.trim().is_empty() {
                continue;
            }
            let mut response = service.handle_line(text.trim()).into_bytes();
            response.push(b'\n');
            if stream
                .write_all(&response)
                .and_then(|()| stream.flush())
                .is_err()
            {
                return;
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // Peer closed.
            Ok(n) => pending.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue; // Idle poll tick: loop to re-check the shutdown flag.
            }
            Err(_) => return,
        }
    }
}
