//! The measurement service: the trusted side of PINQ's agent model, across a process
//! boundary.
//!
//! A [`MeasurementService`] **owns** the protected datasets and every privacy budget;
//! analysts own nothing but plan text. One request ([`MeasureRequest`]) carries a
//! [`PlanSpec`] plus a measurement ε; the service
//!
//! 1. **validates** the spec (wire version, topology, expression types) and rebuilds an
//!    executable [`Plan<Value>`](wpinq::Plan) from it,
//! 2. **binds** each named source to its registered dataset (declared types must match),
//! 3. **optimizes** the plan (the same rewrite pass local `Queryable`s run — so a
//!    redundantly expressed request is charged for the deduplicated plan),
//! 4. **debits** the analyst's per-dataset [`AnalystBudgets`] grant by
//!    `multiplicity × ε`, all-or-nothing, rejecting unaffordable requests before any
//!    noise is drawn,
//! 5. **evaluates** under the configured [`Executor`] and returns only the noisy
//!    release — never raw weights — together with the analyst-visible plan rendering,
//!    which is also appended to the service's audit log.
//!
//! Determinism: for a fixed RNG state the response bytes are identical across executors
//! and optimize levels, and identical to a local typed release of the same plan (see the
//! crate docs for why).

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::Arc;

use rand::Rng;

use wpinq::budget::AnalystBudgets;
use wpinq::plan::{default_executor, plan_from_spec, DynPlan, Executor, OptimizeLevel};
use wpinq::value::{Value, ValueType};
use wpinq::{BudgetError, NoisyCounts, PrivacyBudget, WeightedDataset};
use wpinq_expr::{value_type_from_json, value_type_to_json, Json, PlanSpec, WireError};

use crate::release::release_records_json;

/// Version stamp of the request/response JSON envelope.
pub const REQUEST_VERSION: u32 = 1;

/// The top-level key of a measurement request document.
pub const REQUEST_HEADER: &str = "wpinq_measure_request";

/// A measurement request: who is asking, at what ε, and the plan as data.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureRequest {
    /// The requesting analyst (budget grants are keyed per analyst).
    pub analyst: String,
    /// The `NoisyCount` measurement parameter.
    pub epsilon: f64,
    /// The plan to measure.
    pub spec: PlanSpec,
}

impl MeasureRequest {
    /// The JSON envelope (`{"wpinq_measure_request":1,"analyst":…,"epsilon":…,"plan":…}`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (REQUEST_HEADER.into(), Json::num(REQUEST_VERSION)),
            ("analyst".into(), Json::str(self.analyst.clone())),
            ("epsilon".into(), Json::f64(self.epsilon)),
            ("plan".into(), self.spec.to_json()),
        ])
    }

    /// Serializes the request to compact JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_compact()
    }

    /// Parses a request envelope.
    pub fn from_json(text: &str) -> Result<MeasureRequest, WireError> {
        let json = Json::parse(text).map_err(|e| WireError::new(e.to_string()))?;
        let version = json
            .get(REQUEST_HEADER)
            .and_then(Json::as_u64)
            .ok_or_else(|| WireError::new(format!("missing '{REQUEST_HEADER}' header")))?;
        if version != u64::from(REQUEST_VERSION) {
            return Err(WireError::new(format!(
                "unsupported request version {version}"
            )));
        }
        let analyst = json
            .get("analyst")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::new("missing 'analyst'"))?
            .to_string();
        let epsilon = json
            .get("epsilon")
            .and_then(Json::as_f64)
            .ok_or_else(|| WireError::new("missing or non-finite 'epsilon'"))?;
        let plan = json
            .get("plan")
            .ok_or_else(|| WireError::new("missing 'plan'"))?;
        let spec = PlanSpec::from_json(&plan.to_compact())?;
        Ok(MeasureRequest {
            analyst,
            epsilon,
            spec,
        })
    }
}

/// A successful measurement: the noisy release plus accounting facts the analyst is
/// allowed to see.
#[derive(Debug)]
pub struct MeasureResponse {
    /// The measurement ε.
    pub epsilon: f64,
    /// Record type of the released counts.
    pub output_type: ValueType,
    /// The noisy release, in sorted record order (never raw weights).
    pub release: Vec<(Value, f64)>,
    /// Per-dataset ε charged by this request (`multiplicity × ε`), sorted by name.
    pub charged: Vec<(String, f64)>,
    /// Per-dataset budget remaining for this analyst after the charge, sorted by name.
    pub remaining: Vec<(String, f64)>,
    /// The analyst-visible plan: the optimized plan rendering plus multiplicity report.
    pub explain: String,
}

impl MeasureResponse {
    /// The JSON envelope (`{"ok":true, …}`), deterministic byte-for-byte.
    pub fn to_json(&self) -> Json {
        let pairs = |items: &[(String, f64)]| {
            Json::Arr(
                items
                    .iter()
                    .map(|(name, eps)| Json::Arr(vec![Json::str(name.clone()), Json::f64(*eps)]))
                    .collect(),
            )
        };
        Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("epsilon".into(), Json::f64(self.epsilon)),
            ("output_type".into(), value_type_to_json(&self.output_type)),
            ("release".into(), release_records_json(&self.release)),
            ("charged".into(), pairs(&self.charged)),
            ("remaining".into(), pairs(&self.remaining)),
            ("explain".into(), Json::str(self.explain.clone())),
        ])
    }

    /// Serializes the response to compact JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_compact()
    }
}

/// Why a measurement request was rejected. No error variant ever reveals protected
/// data — rejections happen before noise is drawn and charge nothing.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The request or plan document was malformed or failed type checking.
    Wire(WireError),
    /// The plan references a dataset this service does not host.
    UnknownDataset(String),
    /// The plan declared a source at a type other than the registered one.
    TypeMismatch {
        /// The dataset name.
        dataset: String,
        /// The type the plan declared.
        declared: ValueType,
        /// The type the dataset was registered at.
        registered: ValueType,
    },
    /// The analyst holds no budget grant for a dataset the plan touches.
    NoGrant {
        /// The requesting analyst.
        analyst: String,
        /// The dataset without a grant.
        dataset: String,
    },
    /// A grant cannot afford the request (nothing was charged).
    BudgetExceeded {
        /// The dataset whose grant is short.
        dataset: String,
        /// The underlying budget arithmetic.
        error: BudgetError,
    },
    /// A request parameter was invalid (e.g. non-positive ε).
    InvalidParameter(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Wire(e) => write!(f, "{e}"),
            ServiceError::UnknownDataset(name) => write!(f, "unknown dataset '{name}'"),
            ServiceError::TypeMismatch {
                dataset,
                declared,
                registered,
            } => write!(
                f,
                "dataset '{dataset}' declared as {declared} but registered as {registered}"
            ),
            ServiceError::NoGrant { analyst, dataset } => {
                write!(f, "analyst '{analyst}' has no budget grant for '{dataset}'")
            }
            ServiceError::BudgetExceeded { dataset, error } => {
                write!(f, "budget for '{dataset}' exceeded: {error}")
            }
            ServiceError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}

struct RegisteredDataset {
    ty: ValueType,
    data: Rc<WeightedDataset<Value>>,
}

/// The measurement service: protected datasets, per-analyst budget grants, an executor,
/// and an audit log of every plan it agreed to measure.
pub struct MeasurementService {
    datasets: HashMap<String, RegisteredDataset>,
    budgets: AnalystBudgets,
    executor: Arc<dyn Executor>,
    optimize: OptimizeLevel,
    audit: RefCell<Vec<String>>,
}

impl Default for MeasurementService {
    fn default() -> Self {
        MeasurementService::new()
    }
}

impl MeasurementService {
    /// An empty service with the process-default executor (`WPINQ_THREADS`) and optimize
    /// level (`WPINQ_OPTIMIZE`).
    pub fn new() -> Self {
        MeasurementService {
            datasets: HashMap::new(),
            budgets: AnalystBudgets::new(),
            executor: default_executor(),
            optimize: OptimizeLevel::from_env(),
            audit: RefCell::new(Vec::new()),
        }
    }

    /// Replaces the evaluation strategy (bitwise-neutral: releases do not change).
    pub fn with_executor(mut self, executor: Arc<dyn Executor>) -> Self {
        self.executor = executor;
        self
    }

    /// Replaces the optimize level used for accounting and evaluation.
    pub fn with_optimize_level(mut self, level: OptimizeLevel) -> Self {
        self.optimize = level;
        self
    }

    /// Registers a protected dataset of dynamic records under `name`. Every record must
    /// match `ty`; re-registering a name replaces its data (grants are unaffected).
    pub fn register_values(
        &mut self,
        name: &str,
        ty: ValueType,
        data: WeightedDataset<Value>,
    ) -> Result<(), ServiceError> {
        if name.is_empty() {
            return Err(ServiceError::InvalidParameter(
                "dataset name must be non-empty".into(),
            ));
        }
        for (record, _) in data.iter() {
            let got = record.type_of();
            if got != ty {
                return Err(ServiceError::TypeMismatch {
                    dataset: name.to_string(),
                    declared: ty,
                    registered: got,
                });
            }
        }
        self.datasets.insert(
            name.to_string(),
            RegisteredDataset {
                ty,
                data: Rc::new(data),
            },
        );
        Ok(())
    }

    /// Registers a typed protected dataset under `name` (converted to dynamic records;
    /// support, weights, and sorted order are preserved exactly).
    pub fn register<T: wpinq::ExprRecord>(
        &mut self,
        name: &str,
        data: &WeightedDataset<T>,
    ) -> Result<(), ServiceError> {
        self.register_values(name, T::value_type(), wpinq::plan::dataset_to_values(data))
    }

    /// Grants `analyst` a fresh privacy budget for `dataset`.
    pub fn grant(
        &self,
        analyst: &str,
        dataset: &str,
        budget: PrivacyBudget,
    ) -> Result<(), ServiceError> {
        if !self.datasets.contains_key(dataset) {
            return Err(ServiceError::UnknownDataset(dataset.to_string()));
        }
        self.budgets.grant(analyst, dataset, budget);
        Ok(())
    }

    /// Remaining budget of `(analyst, dataset)`, when a grant exists.
    pub fn remaining(&self, analyst: &str, dataset: &str) -> Option<f64> {
        self.budgets.remaining(analyst, dataset)
    }

    /// The audit log: one rendered, analyst-visible plan per admitted measurement.
    pub fn audit_log(&self) -> Vec<String> {
        self.audit.borrow().clone()
    }

    /// Serves one measurement request. See the module docs for the pipeline; on any
    /// error nothing is charged and no noise is drawn.
    pub fn measure<R: Rng + ?Sized>(
        &self,
        request: &MeasureRequest,
        rng: &mut R,
    ) -> Result<MeasureResponse, ServiceError> {
        if !(request.epsilon.is_finite() && request.epsilon > 0.0) {
            return Err(ServiceError::InvalidParameter(format!(
                "epsilon must be positive and finite, got {}",
                request.epsilon
            )));
        }
        let output_type = request.spec.output_type()?;
        let DynPlan { plan, sources } = plan_from_spec(&request.spec)?;

        // Bind every named source to its registered dataset.
        let mut bindings = wpinq::PlanBindings::new();
        for source in &sources {
            let registered = self
                .datasets
                .get(&source.name)
                .ok_or_else(|| ServiceError::UnknownDataset(source.name.clone()))?;
            if registered.ty != source.ty {
                return Err(ServiceError::TypeMismatch {
                    dataset: source.name.clone(),
                    declared: source.ty.clone(),
                    registered: registered.ty.clone(),
                });
            }
            bindings.bind_shared(&source.plan, registered.data.clone());
        }

        // Accounting runs on the optimized plan, exactly like a local Queryable: a
        // redundantly expressed request is charged for the deduplicated plan. One
        // optimizer pass (bindings-aware, so join input ordering applies) serves
        // accounting, the audit report, and evaluation.
        let optimized = plan.optimize_for_bindings(self.optimize, &bindings);
        let multiplicities = optimized.multiplicities();
        let mut per_dataset: BTreeMap<&str, u32> = BTreeMap::new();
        for source in &sources {
            if let Some(id) = source.plan.input_id() {
                let mult = multiplicities.get(&id).copied().unwrap_or(0);
                if mult > 0 {
                    *per_dataset.entry(source.name.as_str()).or_insert(0) += mult;
                }
            }
        }

        // All-or-nothing debit: verify affordability of every grant, then charge.
        let mut charges: Vec<(String, wpinq::budget::BudgetHandle, f64)> = Vec::new();
        for (dataset, mult) in &per_dataset {
            let handle = self
                .budgets
                .lookup(&request.analyst, dataset)
                .ok_or_else(|| ServiceError::NoGrant {
                    analyst: request.analyst.clone(),
                    dataset: dataset.to_string(),
                })?;
            charges.push((dataset.to_string(), handle, *mult as f64 * request.epsilon));
        }
        for (dataset, handle, cost) in &charges {
            if !handle.can_afford(*cost) {
                return Err(ServiceError::BudgetExceeded {
                    dataset: dataset.clone(),
                    error: BudgetError {
                        requested: *cost,
                        remaining: handle.remaining(),
                    },
                });
            }
        }
        for (dataset, handle, cost) in &charges {
            handle.charge(*cost).map_err(|error| {
                // Unreachable unless the grant is shared and raced; keep it sound anyway.
                ServiceError::BudgetExceeded {
                    dataset: dataset.clone(),
                    error,
                }
            })?;
        }

        // Evaluate and release — the plan is already fully rewritten, so evaluation runs
        // at level None. Only the noisy counts leave this function.
        let measurement = optimized.noisy_count(request.epsilon);
        let counts: NoisyCounts<Value> =
            measurement.release_opt(&bindings, &*self.executor, OptimizeLevel::None, rng);

        let report = wpinq::plan::PlanExplain {
            level: self.optimize,
            nodes_before: plan.node_count(),
            nodes_after: optimized.node_count(),
            before: plan.multiplicities(),
            after: multiplicities,
            tree: optimized.render(),
        };
        let explain = format!(
            "analyst {} measured at epsilon {}:\n{report}",
            request.analyst, request.epsilon
        );
        self.audit.borrow_mut().push(explain.clone());

        Ok(MeasureResponse {
            epsilon: request.epsilon,
            output_type,
            release: counts.sorted_observed(),
            charged: charges
                .iter()
                .map(|(dataset, _, cost)| (dataset.clone(), *cost))
                .collect(),
            remaining: charges
                .iter()
                .map(|(dataset, handle, _)| (dataset.clone(), handle.remaining()))
                .collect(),
            explain,
        })
    }

    /// The JSON front door: parses a request envelope, serves it, and encodes the
    /// outcome — errors come back as `{"ok":false,"error":…}` instead of panicking.
    pub fn handle_json<R: Rng + ?Sized>(&self, request_json: &str, rng: &mut R) -> String {
        let outcome = MeasureRequest::from_json(request_json)
            .map_err(ServiceError::from)
            .and_then(|request| self.measure(&request, rng));
        match outcome {
            Ok(response) => response.to_json_string(),
            Err(error) => Json::Obj(vec![
                ("ok".into(), Json::Bool(false)),
                ("error".into(), Json::str(error.to_string())),
            ])
            .to_compact(),
        }
    }
}

/// Parses the `output_type` field of a successful response envelope.
pub fn response_output_type(response: &Json) -> Result<ValueType, WireError> {
    value_type_from_json(
        response
            .get("output_type")
            .ok_or_else(|| WireError::new("response missing 'output_type'"))?,
    )
}
