//! The measurement service: the trusted side of PINQ's agent model, across a process
//! boundary.
//!
//! A [`MeasurementService`] **owns** the protected datasets and every privacy budget;
//! analysts own nothing but plan text. One request ([`MeasureRequest`]) carries a
//! [`PlanSpec`] plus a measurement ε; the service
//!
//! 1. **validates** the spec (wire version, topology, expression types) and rebuilds an
//!    executable [`Plan<Value>`](wpinq::Plan) from it,
//! 2. **binds** each named source to its registered dataset (declared types must match),
//! 3. **optimizes** the plan (the same rewrite pass local `Queryable`s run — so a
//!    redundantly expressed request is charged for the deduplicated plan),
//! 4. **debits** the analyst's per-dataset [`AnalystBudgets`] grant by
//!    `multiplicity × ε`, all-or-nothing, rejecting unaffordable requests before any
//!    noise is drawn,
//! 5. **evaluates** under the configured [`Executor`] and returns only the noisy
//!    release — never raw weights — together with the analyst-visible plan rendering,
//!    which is also appended to the service's audit log.
//!
//! # Concurrency
//!
//! The service is `Send + Sync` (compile-time asserted below) and every entry point
//! takes `&self`: one `Arc<MeasurementService>` serves any number of request threads.
//! Interior state is partitioned into independent leaf locks — the dataset table
//! (`RwLock`, read-mostly), the audit log, the noise generator, and each budget grant —
//! none of which is ever held while another is acquired, so the service cannot deadlock
//! with itself.
//!
//! Multi-dataset debits are **two-phase and all-or-nothing**: the service first
//! *reserves* `multiplicity × ε` against every grant the optimized plan touches, walking
//! grants in canonical dataset order, then evaluates, then *commits* every reservation.
//! Reservations are RAII guards ([`wpinq::budget::BudgetReservation`]) that roll back on
//! drop, so any failure after the first hold — an unaffordable later grant, even an
//! evaluation panic — returns every held ε to its grant. Racing requests can neither
//! double-spend a grant (the check-and-hold is atomic under the grant's own lock) nor
//! deadlock (each reserve touches exactly one lock at a time).
//!
//! # The measurement cache
//!
//! [`serve`](MeasurementService::serve) memoizes responses by **(analyst, ε, canonical
//! optimized plan)**: a repeated identical request returns the first response
//! byte-identically, without re-touching data and *without a second ε charge*. This is
//! the paper's protection-once/reuse-forever guarantee lifted to the service boundary —
//! a noisy release is post-processable, so replaying its bytes is free. The replay is
//! recorded in the audit log. The *release bytes* are a sealed artifact, but the
//! `remaining` field of the JSON envelope is re-read from the live grants at assembly
//! time ([`MeasurementService::live_remaining`]) — a replay must not quote budgets the
//! analyst has since spent down. [`measure`](MeasurementService::measure), the
//! caller-supplied RNG path used by deterministic replay tests, bypasses the cache.
//!
//! The cache is **bounded** ([`DEFAULT_CACHE_CAPACITY`] entries, LRU-evicted;
//! [`with_cache_capacity`](MeasurementService::with_cache_capacity)) — keys can be
//! minted at arbitrarily small ε, so residency must not scale with analyst behavior —
//! and **generation-keyed**: re-registering a dataset bumps its generation, so entries
//! computed over replaced data are invalidated rather than replayed.
//!
//! Determinism: for a fixed RNG state the response bytes are identical across executors
//! and optimize levels, and identical to a local typed release of the same plan (see the
//! crate docs for why).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wpinq::budget::{AnalystBudgets, BudgetReservation};
use wpinq::plan::{default_executor, plan_from_spec, DynPlan, Executor, OptimizeLevel};
use wpinq::value::{Value, ValueType};
use wpinq::{BudgetError, NoisyCounts, PrivacyBudget, WeightedDataset};
use wpinq_core::column::ColumnBatch;
use wpinq_core::colwire;
use wpinq_expr::{value_type_from_json, value_type_to_json, Json, PlanSpec, WireError};
use wpinq_telemetry::{
    emit_to_sink, registry, trace_sink_enabled, Counter, FieldValue, Histogram, Trace, Tracer,
    LATENCY_BUCKETS_MS,
};

use crate::cache::{CacheStats, MeasurementCache};
use crate::release::release_records_json;

/// Registry name of the per-outcome request counter (label `outcome` ∈ `ok`/`error`).
pub const REQUESTS_METRIC: &str = "wpinq_requests_total";
/// Registry name of the front-door latency histogram (milliseconds per `handle_line`).
pub const REQUEST_LATENCY_METRIC: &str = "wpinq_request_latency_ms";
/// Registry name of the counter of audit entries dropped by the bounded audit ring.
pub const AUDIT_DROPPED_METRIC: &str = "wpinq_audit_dropped_total";

fn requests_ok_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            REQUESTS_METRIC,
            &[("outcome", "ok")],
            "Front-door requests by outcome.",
        )
    })
}

fn requests_error_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            REQUESTS_METRIC,
            &[("outcome", "error")],
            "Front-door requests by outcome.",
        )
    })
}

fn request_latency_histogram() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        registry().histogram(
            REQUEST_LATENCY_METRIC,
            &[],
            "Wall time of one front-door request (parse through response encoding).",
            &LATENCY_BUCKETS_MS,
        )
    })
}

fn audit_dropped_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            AUDIT_DROPPED_METRIC,
            &[],
            "Oldest audit-log entries dropped to stay within the audit ring capacity.",
        )
    })
}

/// Version stamp of the request/response JSON envelope. Version 2 adds the optional
/// client-supplied `id` (echoed in every response — required for pipelined transports)
/// and structured `{"code","message"}` errors; version-1 requests still parse.
pub const REQUEST_VERSION: u32 = 2;

/// The top-level key of a measurement request document.
pub const REQUEST_HEADER: &str = "wpinq_measure_request";

/// How a successful response carries its release records. Like `trace`, the encoding is
/// an envelope-assembly concern: it is never part of the measurement-cache key and never
/// perturbs the release — a columnar envelope decodes to the byte-identical records the
/// JSON envelope prints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResponseEncoding {
    /// The default: `"release"` as a JSON array of `[record, count]` pairs.
    #[default]
    Json,
    /// `"release_columnar"`: a base64 colwire frame (see `wpinq_core::colwire` and the
    /// PROTOCOL.md frame layout) holding the same records column-contiguously.
    Columnar,
}

/// A measurement request: who is asking, at what ε, and the plan as data.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureRequest {
    /// The requesting analyst (budget grants are keyed per analyst).
    pub analyst: String,
    /// The `NoisyCount` measurement parameter.
    pub epsilon: f64,
    /// The plan to measure.
    pub spec: PlanSpec,
    /// Optional client-chosen correlation id, echoed verbatim in the response envelope
    /// so pipelined clients can match responses to requests. Never interpreted.
    pub id: Option<String>,
    /// When `true`, the service records a structured trace of this request's pipeline
    /// (spans for validate/bind/optimize/reserve/execute/commit plus the per-operator
    /// EXPLAIN ANALYZE report) and attaches it to the response envelope as `"trace"`.
    /// Tracing never changes the release: the bytes are identical with the flag on or
    /// off (property-tested), and the flag is absent from the measurement-cache key.
    pub trace: bool,
    /// The release encoding this client wants in the response envelope (JSON unless the
    /// request says `"encoding":"columnar"`). Absent from the measurement-cache key;
    /// cached results replay under either encoding.
    pub encoding: ResponseEncoding,
}

impl MeasureRequest {
    /// The JSON envelope
    /// (`{"wpinq_measure_request":2,"id":…,"analyst":…,"epsilon":…,"plan":…}`).
    pub fn to_json(&self) -> Json {
        let mut fields = vec![(REQUEST_HEADER.to_string(), Json::num(REQUEST_VERSION))];
        if let Some(id) = &self.id {
            fields.push(("id".into(), Json::str(id.clone())));
        }
        fields.push(("analyst".into(), Json::str(self.analyst.clone())));
        fields.push(("epsilon".into(), Json::f64(self.epsilon)));
        if self.trace {
            fields.push(("trace".into(), Json::Bool(true)));
        }
        if self.encoding == ResponseEncoding::Columnar {
            fields.push(("encoding".into(), Json::str("columnar")));
        }
        fields.push(("plan".into(), self.spec.to_json()));
        Json::Obj(fields)
    }

    /// Serializes the request to compact JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_compact()
    }

    /// Parses a request envelope. Versions 1 and 2 are both accepted: version 1 is the
    /// pre-`id` format, so a v1 request simply parses with `id: None`.
    pub fn from_json(text: &str) -> Result<MeasureRequest, WireError> {
        let json = Json::parse(text).map_err(|e| WireError::new(e.to_string()))?;
        let version = json
            .get(REQUEST_HEADER)
            .and_then(Json::as_u64)
            .ok_or_else(|| WireError::new(format!("missing '{REQUEST_HEADER}' header")))?;
        if !(1..=u64::from(REQUEST_VERSION)).contains(&version) {
            return Err(WireError::new(format!(
                "unsupported request version {version} (this build speaks {REQUEST_VERSION})"
            )));
        }
        let analyst = json
            .get("analyst")
            .and_then(Json::as_str)
            .ok_or_else(|| WireError::new("missing 'analyst'"))?
            .to_string();
        let epsilon = json
            .get("epsilon")
            .and_then(Json::as_f64)
            .ok_or_else(|| WireError::new("missing or non-finite 'epsilon'"))?;
        let id = json.get("id").and_then(Json::as_str).map(str::to_string);
        let trace = json.get("trace").and_then(Json::as_bool).unwrap_or(false);
        let encoding = match json.get("encoding") {
            None => ResponseEncoding::Json,
            Some(value) => match value.as_str() {
                Some("json") => ResponseEncoding::Json,
                Some("columnar") => ResponseEncoding::Columnar,
                _ => {
                    return Err(WireError::new(
                        "unknown 'encoding' (this build speaks \"json\" and \"columnar\")",
                    ))
                }
            },
        };
        let plan = json
            .get("plan")
            .ok_or_else(|| WireError::new("missing 'plan'"))?;
        let spec = PlanSpec::from_json(&plan.to_compact())?;
        Ok(MeasureRequest {
            analyst,
            epsilon,
            spec,
            id,
            trace,
            encoding,
        })
    }
}

/// A successful measurement: the noisy release plus accounting facts the analyst is
/// allowed to see.
#[derive(Debug)]
pub struct MeasureResponse {
    /// The measurement ε.
    pub epsilon: f64,
    /// Record type of the released counts.
    pub output_type: ValueType,
    /// The noisy release, in sorted record order (never raw weights).
    pub release: Vec<(Value, f64)>,
    /// Per-dataset ε charged by this request (`multiplicity × ε`), sorted by name.
    pub charged: Vec<(String, f64)>,
    /// Per-dataset budget remaining for this analyst after the charge, sorted by name.
    /// This records the grants as of the charge; the JSON envelope layer re-reads the
    /// live grants at assembly time ([`MeasurementService::live_remaining`]), so a
    /// cache-replayed envelope never quotes budgets the analyst has since spent down.
    pub remaining: Vec<(String, f64)>,
    /// The analyst-visible plan: the optimized plan rendering plus multiplicity report.
    pub explain: String,
}

impl MeasureResponse {
    /// The JSON envelope (`{"ok":true, …}`), deterministic byte-for-byte. The response
    /// itself carries no id — the envelope layer echoes the request's id via
    /// [`to_json_with_id`](Self::to_json_with_id), which keeps cached responses
    /// id-agnostic.
    pub fn to_json(&self) -> Json {
        self.to_json_with_id(None)
    }

    /// [`to_json`](Self::to_json) with the request's correlation id spliced in right
    /// after `"ok"` (omitted when the request carried none, preserving the v1 shape).
    pub fn to_json_with_id(&self, id: Option<&str>) -> Json {
        self.to_json_envelope(id, None, None, ResponseEncoding::Json)
    }

    /// The full envelope assembly: [`to_json_with_id`](Self::to_json_with_id) plus the
    /// per-request pieces a cached response must stay agnostic of — a live `remaining`
    /// override (read from the grants at assembly time, see
    /// [`MeasurementService::live_remaining`]), the request's trace (spliced in as a
    /// trailing `"trace"` field when the request asked for one), and the release
    /// encoding the request negotiated. Under [`ResponseEncoding::Columnar`] the
    /// `"release"` array is replaced by `"release_columnar"`, a base64 colwire frame of
    /// the same records; everything else in the envelope is unchanged, and a cached
    /// response replays byte-identically under whichever encoding each request asks
    /// for.
    pub fn to_json_envelope(
        &self,
        id: Option<&str>,
        remaining: Option<&[(String, f64)]>,
        trace: Option<&Trace>,
        encoding: ResponseEncoding,
    ) -> Json {
        let pairs = |items: &[(String, f64)]| {
            Json::Arr(
                items
                    .iter()
                    .map(|(name, eps)| Json::Arr(vec![Json::str(name.clone()), Json::f64(*eps)]))
                    .collect(),
            )
        };
        let mut fields = vec![("ok".to_string(), Json::Bool(true))];
        if let Some(id) = id {
            fields.push(("id".into(), Json::str(id.to_string())));
        }
        let release_field = match encoding {
            ResponseEncoding::Json => ("release".to_string(), release_records_json(&self.release)),
            ResponseEncoding::Columnar => {
                let batch = ColumnBatch::from_pairs(
                    self.output_type.clone(),
                    self.release.iter().map(|(record, count)| (record, *count)),
                )
                .expect("release records all have the response's output type");
                (
                    "release_columnar".to_string(),
                    Json::str(colwire::to_base64(&colwire::encode_batch(&batch))),
                )
            }
        };
        fields.extend([
            ("epsilon".to_string(), Json::f64(self.epsilon)),
            ("output_type".into(), value_type_to_json(&self.output_type)),
            release_field,
            ("charged".into(), pairs(&self.charged)),
            (
                "remaining".into(),
                pairs(remaining.unwrap_or(&self.remaining)),
            ),
            ("explain".into(), Json::str(self.explain.clone())),
        ]);
        if let Some(trace) = trace {
            if let Ok(json) = Json::parse(&trace.to_json()) {
                fields.push(("trace".into(), json));
            }
        }
        Json::Obj(fields)
    }

    /// Serializes the response to compact JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_compact()
    }
}

/// Why a measurement request was rejected. No error variant ever reveals protected
/// data — rejections happen before noise is drawn and charge nothing.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The request or plan document was malformed or failed type checking.
    Wire(WireError),
    /// The plan references a dataset this service does not host.
    UnknownDataset(String),
    /// The plan declared a source at a type other than the registered one.
    TypeMismatch {
        /// The dataset name.
        dataset: String,
        /// The type the plan declared.
        declared: ValueType,
        /// The type the dataset was registered at.
        registered: ValueType,
    },
    /// The analyst holds no budget grant for a dataset the plan touches.
    NoGrant {
        /// The requesting analyst.
        analyst: String,
        /// The dataset without a grant.
        dataset: String,
    },
    /// A grant cannot afford the request (nothing was charged).
    BudgetExceeded {
        /// The dataset whose grant is short.
        dataset: String,
        /// The underlying budget arithmetic.
        error: BudgetError,
    },
    /// A request parameter was invalid (e.g. non-positive ε).
    InvalidParameter(String),
}

impl ServiceError {
    /// A stable machine-readable error code, carried in the response envelope alongside
    /// the human-readable message. Codes are part of the wire contract (PROTOCOL.md):
    /// clients may branch on them; messages may change freely.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::Wire(_) => "wire",
            ServiceError::UnknownDataset(_) => "unknown_dataset",
            ServiceError::TypeMismatch { .. } => "type_mismatch",
            ServiceError::NoGrant { .. } => "no_grant",
            ServiceError::BudgetExceeded { .. } => "budget_exceeded",
            ServiceError::InvalidParameter(_) => "invalid_parameter",
        }
    }

    /// The `{"ok":false,…}` envelope, with the request's correlation id echoed when the
    /// request parsed far enough to reveal one.
    pub fn to_json_with_id(&self, id: Option<&str>) -> Json {
        let mut fields = vec![("ok".to_string(), Json::Bool(false))];
        if let Some(id) = id {
            fields.push(("id".into(), Json::str(id.to_string())));
        }
        fields.push((
            "error".into(),
            Json::Obj(vec![
                ("code".into(), Json::str(self.code().to_string())),
                ("message".into(), Json::str(self.to_string())),
            ]),
        ));
        Json::Obj(fields)
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Wire(e) => write!(f, "{e}"),
            ServiceError::UnknownDataset(name) => write!(f, "unknown dataset '{name}'"),
            ServiceError::TypeMismatch {
                dataset,
                declared,
                registered,
            } => write!(
                f,
                "dataset '{dataset}' declared as {declared} but registered as {registered}"
            ),
            ServiceError::NoGrant { analyst, dataset } => {
                write!(f, "analyst '{analyst}' has no budget grant for '{dataset}'")
            }
            ServiceError::BudgetExceeded { dataset, error } => {
                write!(f, "budget for '{dataset}' exceeded: {error}")
            }
            ServiceError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}

struct RegisteredDataset {
    ty: ValueType,
    data: Arc<WeightedDataset<Value>>,
    /// Bumped every time the name is re-registered; part of the measurement-cache key,
    /// so a release computed over replaced data is never replayed for the new data.
    generation: u64,
}

/// The measurement-cache key: analyst × ε-bits × canonical optimized plan × the
/// generation of every dataset the plan binds. The generations make entries computed
/// over since-replaced data unreachable (and findable by
/// [`MeasurementCache::retain`] for proactive invalidation).
type CacheKey = (String, u64, String, Vec<(String, u64)>);

/// Everything [`prepare`](MeasurementService::prepare) derives from a request before any
/// budget is touched: the rebuilt plan, its bindings, the optimizer-deduplicated
/// per-dataset multiplicities, and the canonical cache-key encoding.
struct Prepared {
    output_type: ValueType,
    bindings: wpinq::PlanBindings,
    plan: wpinq::Plan<Value>,
    optimized: wpinq::Plan<Value>,
    per_dataset: BTreeMap<String, u32>,
    canonical: String,
    /// (dataset, generation) of every bound source, sorted by name — the data snapshot
    /// this preparation captured (the bindings hold the matching `Arc`s).
    generations: Vec<(String, u64)>,
}

/// The bounded audit log: a ring of the most recent entries. Analysts mint audit
/// entries with every admitted request, so an unbounded log — like an unbounded cache —
/// would let them grow server memory without limit; beyond `capacity` entries the
/// oldest is dropped and counted (locally and on [`AUDIT_DROPPED_METRIC`]).
struct AuditRing {
    entries: VecDeque<String>,
    capacity: usize,
    dropped: u64,
}

impl AuditRing {
    fn new(capacity: usize) -> Self {
        AuditRing {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    fn push(&mut self, entry: String) {
        while self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
            audit_dropped_counter().inc();
        }
        self.entries.push_back(entry);
    }
}

/// The measurement service: protected datasets, per-analyst budget grants, an executor,
/// an audit log of every plan it agreed to measure, and the cross-request measurement
/// cache. `Send + Sync`; share it as `Arc<MeasurementService>` across request threads.
pub struct MeasurementService {
    datasets: RwLock<HashMap<String, RegisteredDataset>>,
    budgets: AnalystBudgets,
    executor: Arc<dyn Executor>,
    optimize: OptimizeLevel,
    audit: Mutex<AuditRing>,
    /// The curator's noise source for [`serve`](Self::serve): each request draws a child
    /// generator under a brief lock, so evaluation itself is never serialized on it.
    noise: Mutex<StdRng>,
    cache: MeasurementCache<CacheKey, Arc<MeasureResponse>>,
    cache_enabled: bool,
}

/// Default bound on resident measurement-cache entries. Keys can be minted at
/// negligible ε (ε may be arbitrarily small), so the cache must not grow with analyst
/// behavior; beyond this many keys the least recently used entry is evicted. Tune with
/// [`MeasurementService::with_cache_capacity`].
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Default bound on resident audit-log entries (the ring keeps the most recent this
/// many; older entries are dropped and counted). Tune with
/// [`MeasurementService::with_audit_capacity`].
pub const DEFAULT_AUDIT_CAPACITY: usize = 4096;

// The whole point of this service is to be shared across request threads; make the
// property a compile error to lose rather than a runtime surprise (it regressed silently
// once, via `RefCell` audit state and `Rc` plan internals).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MeasurementService>();
};

impl Default for MeasurementService {
    fn default() -> Self {
        MeasurementService::new()
    }
}

/// A seed from OS entropy, without assuming a `/dev/urandom` (the std hasher keys are
/// drawn from the OS entropy pool at first use).
fn entropy_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish()
}

impl MeasurementService {
    /// An empty service with the process-default executor (`WPINQ_THREADS`), optimize
    /// level (`WPINQ_OPTIMIZE`), an entropy-seeded noise source, and the measurement
    /// cache enabled.
    pub fn new() -> Self {
        MeasurementService {
            datasets: RwLock::new(HashMap::new()),
            budgets: AnalystBudgets::new(),
            executor: default_executor(),
            optimize: OptimizeLevel::from_env(),
            audit: Mutex::new(AuditRing::new(DEFAULT_AUDIT_CAPACITY)),
            noise: Mutex::new(StdRng::seed_from_u64(entropy_seed())),
            cache: MeasurementCache::with_capacity(DEFAULT_CACHE_CAPACITY),
            cache_enabled: true,
        }
    }

    /// Replaces the evaluation strategy (bitwise-neutral: releases do not change).
    pub fn with_executor(mut self, executor: Arc<dyn Executor>) -> Self {
        self.executor = executor;
        self
    }

    /// Replaces the optimize level used for accounting and evaluation.
    pub fn with_optimize_level(mut self, level: OptimizeLevel) -> Self {
        self.optimize = level;
        self
    }

    /// Pins the noise source of [`serve`](Self::serve) to a fixed seed.
    ///
    /// For tests and reproducible demos only: in production the seed is the curator's
    /// secret — a guessable seed would let an analyst replay the Laplace stream and
    /// de-noise every release.
    pub fn with_noise_seed(mut self, seed: u64) -> Self {
        self.noise = Mutex::new(StdRng::seed_from_u64(seed));
        self
    }

    /// Enables or disables the cross-request measurement cache (enabled by default).
    /// Disabling never changes any single response's bytes — it only makes a repeated
    /// identical request draw fresh noise and pay again.
    pub fn with_measurement_cache(mut self, enabled: bool) -> Self {
        self.cache_enabled = enabled;
        self
    }

    /// Replaces the measurement cache's capacity bound
    /// ([`DEFAULT_CACHE_CAPACITY`] entries by default, clamped to ≥ 1). Evicting an
    /// entry is always privacy-sound — a later identical repeat simply becomes a fresh
    /// measurement with a fresh charge — so operators may size this purely by memory.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = MeasurementCache::with_capacity(capacity);
        self
    }

    /// Replaces the audit ring's capacity bound ([`DEFAULT_AUDIT_CAPACITY`] entries by
    /// default, clamped to ≥ 1). The ring keeps the most recent entries; dropping an
    /// old one only loses diagnostics, never accounting — budgets are the source of
    /// truth for ε — and every drop is counted
    /// ([`audit_dropped`](Self::audit_dropped), [`AUDIT_DROPPED_METRIC`]).
    pub fn with_audit_capacity(mut self, capacity: usize) -> Self {
        self.audit = Mutex::new(AuditRing::new(capacity));
        self
    }

    /// Registers a protected dataset of dynamic records under `name`. Every record must
    /// match `ty`; re-registering a name replaces its data (grants are unaffected).
    ///
    /// Replacing data **invalidates** every measurement-cache entry whose plan bound the
    /// old data: the dataset's generation (part of the cache key) is bumped, so a repeat
    /// of an earlier request is a fresh measurement over the new data with a fresh ε
    /// charge — never a replay of a release the new data took no part in.
    pub fn register_values(
        &self,
        name: &str,
        ty: ValueType,
        data: WeightedDataset<Value>,
    ) -> Result<(), ServiceError> {
        if name.is_empty() {
            return Err(ServiceError::InvalidParameter(
                "dataset name must be non-empty".into(),
            ));
        }
        for (record, _) in data.iter() {
            let got = record.type_of();
            if got != ty {
                return Err(ServiceError::TypeMismatch {
                    dataset: name.to_string(),
                    declared: ty,
                    registered: got,
                });
            }
        }
        let replaced = {
            let mut datasets = self
                .datasets
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            let generation = datasets.get(name).map_or(0, |d| d.generation + 1);
            datasets.insert(
                name.to_string(),
                RegisteredDataset {
                    ty,
                    data: Arc::new(data),
                    generation,
                },
            );
            generation > 0
        };
        if replaced {
            // Stale entries are already unreachable (their keys carry the old
            // generation); dropping them now frees their memory too.
            self.cache
                .retain(|(_, _, _, generations)| generations.iter().all(|(n, _)| n != name));
        }
        Ok(())
    }

    /// Registers a typed protected dataset under `name` (converted to dynamic records;
    /// support, weights, and sorted order are preserved exactly).
    pub fn register<T: wpinq::ExprRecord>(
        &self,
        name: &str,
        data: &WeightedDataset<T>,
    ) -> Result<(), ServiceError> {
        self.register_values(name, T::value_type(), wpinq::plan::dataset_to_values(data))
    }

    /// Grants `analyst` a fresh privacy budget for `dataset`.
    pub fn grant(
        &self,
        analyst: &str,
        dataset: &str,
        budget: PrivacyBudget,
    ) -> Result<(), ServiceError> {
        if !self
            .datasets
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .contains_key(dataset)
        {
            return Err(ServiceError::UnknownDataset(dataset.to_string()));
        }
        self.budgets.grant(analyst, dataset, budget);
        Ok(())
    }

    /// Remaining budget of `(analyst, dataset)`, when a grant exists.
    pub fn remaining(&self, analyst: &str, dataset: &str) -> Option<f64> {
        self.budgets.remaining(analyst, dataset)
    }

    /// The audit log: one rendered, analyst-visible plan per admitted measurement, plus
    /// one line per cache replay. Bounded — the ring keeps the most recent
    /// [`DEFAULT_AUDIT_CAPACITY`] entries (see
    /// [`with_audit_capacity`](Self::with_audit_capacity)); [`audit_dropped`](Self::audit_dropped)
    /// counts what aged out.
    pub fn audit_log(&self) -> Vec<String> {
        self.audit
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entries
            .iter()
            .cloned()
            .collect()
    }

    /// Number of audit entries dropped by the ring's capacity bound since construction.
    pub fn audit_dropped(&self) -> u64 {
        self.audit
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .dropped
    }

    /// Hit/miss counters of the measurement cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Steps 1–3 of the pipeline (validate, bind, optimize): everything derivable from
    /// the request without touching a budget or drawing noise.
    fn prepare(&self, request: &MeasureRequest, tracer: &Tracer) -> Result<Prepared, ServiceError> {
        if !(request.epsilon.is_finite() && request.epsilon > 0.0) {
            return Err(ServiceError::InvalidParameter(format!(
                "epsilon must be positive and finite, got {}",
                request.epsilon
            )));
        }
        let validate = tracer.span("validate");
        let output_type = request.spec.output_type()?;
        let DynPlan { plan, sources } = plan_from_spec(&request.spec)?;
        drop(validate);

        // Bind every named source to its registered dataset (a read lock held only for
        // the lookups — binding shares the `Arc`, never copies records). The generation
        // of each bound dataset is captured with its `Arc`, so the cache key and the
        // data this preparation will evaluate always describe the same snapshot.
        let mut bindings = wpinq::PlanBindings::new();
        let mut generation_by_name: BTreeMap<String, u64> = BTreeMap::new();
        {
            let _bind = tracer.span("bind");
            let datasets = self.datasets.read().unwrap_or_else(PoisonError::into_inner);
            for source in &sources {
                let registered = datasets
                    .get(&source.name)
                    .ok_or_else(|| ServiceError::UnknownDataset(source.name.clone()))?;
                if registered.ty != source.ty {
                    return Err(ServiceError::TypeMismatch {
                        dataset: source.name.clone(),
                        declared: source.ty.clone(),
                        registered: registered.ty.clone(),
                    });
                }
                bindings.bind_shared(&source.plan, registered.data.clone());
                generation_by_name.insert(source.name.clone(), registered.generation);
            }
        }

        // Accounting runs on the optimized plan, exactly like a local Queryable: a
        // redundantly expressed request is charged for the deduplicated plan. One
        // optimizer pass (bindings-aware, so join input ordering applies) serves
        // accounting, the audit report, evaluation, and the cache key.
        let optimize_span = tracer.span("optimize");
        let optimized = plan.optimize_for_bindings(self.optimize, &bindings);
        drop(optimize_span);
        let multiplicities = optimized.multiplicities();
        let mut per_dataset: BTreeMap<String, u32> = BTreeMap::new();
        for source in &sources {
            if let Some(id) = source.plan.input_id() {
                let mult = multiplicities.get(&id).copied().unwrap_or(0);
                if mult > 0 {
                    *per_dataset.entry(source.name.clone()).or_insert(0) += mult;
                }
            }
        }

        // Reject a total cost that overflows f64 *here*, before any grant lock is
        // taken: `reserve` would refuse a non-finite amount anyway, but the analyst
        // deserves `invalid_parameter` (a malformed request), not `budget_exceeded`.
        for (dataset, mult) in &per_dataset {
            let cost = f64::from(*mult) * request.epsilon;
            if !cost.is_finite() {
                return Err(ServiceError::InvalidParameter(format!(
                    "total cost {mult} x {} for dataset '{dataset}' is not representable",
                    request.epsilon
                )));
            }
        }

        // The cache-key encoding: the canonical bytes of the *optimized* plan, so
        // differently-phrased requests that optimize to the same plan share an entry.
        // (Full bytes, not a hash — a hash collision would hand one analyst's plan the
        // release of another, which no amount of improbability justifies.)
        let canonical = optimized
            .to_spec()
            .map(|spec| spec.to_json_string())
            .unwrap_or_else(|| request.spec.to_json_string());

        Ok(Prepared {
            output_type,
            bindings,
            plan,
            optimized,
            per_dataset,
            canonical,
            generations: generation_by_name.into_iter().collect(),
        })
    }

    /// Steps 4–5 of the pipeline: the two-phase debit, evaluation, and release assembly.
    fn charge_and_evaluate<R: Rng + ?Sized>(
        &self,
        request: &MeasureRequest,
        prepared: &Prepared,
        rng: &mut R,
        tracer: &Tracer,
    ) -> Result<MeasureResponse, ServiceError> {
        // Phase one: reserve against every grant in canonical dataset order (the
        // BTreeMap iterates sorted). Each reserve is an atomic check-and-hold under the
        // grant's own lock; a failure here drops the earlier guards, rolling every hold
        // back — nothing is ever partially charged.
        let reserve_span = tracer.span("reserve");
        let mut held: Vec<(String, BudgetReservation)> = Vec::new();
        for (dataset, mult) in &prepared.per_dataset {
            let handle = self
                .budgets
                .lookup(&request.analyst, dataset)
                .ok_or_else(|| ServiceError::NoGrant {
                    analyst: request.analyst.clone(),
                    dataset: dataset.clone(),
                })?;
            let cost = f64::from(*mult) * request.epsilon;
            let reservation =
                handle
                    .reserve(cost)
                    .map_err(|error| ServiceError::BudgetExceeded {
                        dataset: dataset.clone(),
                        error,
                    })?;
            held.push((dataset.clone(), reservation));
        }
        drop(reserve_span);

        // Evaluate and release — the plan is already fully rewritten, so evaluation runs
        // at level None. Only the noisy counts leave this function. Should evaluation
        // panic, the `held` guards unwind with the stack and every hold rolls back.
        //
        // The traced and untraced arms run the *same* data path (the EXPLAIN ANALYZE
        // collector only hooks the memoizing node wrappers) and make the same single
        // `NoisyCounts::measure` call on the same rng, so the release bytes are
        // identical either way (property-tested in `tests/`).
        let measurement = prepared.optimized.noisy_count(request.epsilon);
        let execute_span = tracer.span("execute");
        let counts: NoisyCounts<Value> = if tracer.is_enabled() {
            let (counts, release_trace) = measurement.release_traced(
                &prepared.bindings,
                &*self.executor,
                OptimizeLevel::None,
                rng,
            );
            tracer.record_span_us("noise", release_trace.noise_us);
            tracer.field("analyze", FieldValue::Raw(release_trace.analyze.to_json()));
            counts
        } else {
            measurement.release_opt(
                &prepared.bindings,
                &*self.executor,
                OptimizeLevel::None,
                rng,
            )
        };
        drop(execute_span);

        // Phase two: the release exists, so the charges stand. Commit every hold.
        let _commit_span = tracer.span("commit");
        let charged: Vec<(String, f64)> = held
            .iter()
            .map(|(dataset, reservation)| (dataset.clone(), reservation.amount()))
            .collect();
        let mut remaining = Vec::with_capacity(held.len());
        for (dataset, reservation) in held {
            let handle = reservation.handle().clone();
            reservation.commit();
            remaining.push((dataset, handle.remaining()));
        }

        let report = wpinq::plan::PlanExplain {
            level: self.optimize,
            nodes_before: prepared.plan.node_count(),
            nodes_after: prepared.optimized.node_count(),
            before: prepared.plan.multiplicities(),
            after: prepared.optimized.multiplicities(),
            tree: prepared.optimized.render(),
        };
        let explain = format!(
            "analyst {} measured at epsilon {}:\n{report}",
            request.analyst, request.epsilon
        );
        self.audit
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(explain.clone());

        Ok(MeasureResponse {
            epsilon: request.epsilon,
            output_type: prepared.output_type.clone(),
            release: counts.sorted_observed(),
            charged,
            remaining,
            explain,
        })
    }

    /// A child generator forked off the service noise source (brief lock; evaluation
    /// itself never serializes on the RNG).
    fn child_rng(&self) -> StdRng {
        let mut noise = self.noise.lock().unwrap_or_else(PoisonError::into_inner);
        StdRng::from_rng(&mut *noise)
    }

    /// Serves one measurement request with a **caller-supplied** noise source, bypassing
    /// the measurement cache. This is the deterministic path — replay tests pin the RNG
    /// and compare response bytes across executors. On any error nothing is charged and
    /// no noise is drawn. Production transports use [`serve`](Self::serve) instead.
    pub fn measure<R: Rng + ?Sized>(
        &self,
        request: &MeasureRequest,
        rng: &mut R,
    ) -> Result<MeasureResponse, ServiceError> {
        let tracer = Tracer::disabled();
        let prepared = self.prepare(request, &tracer)?;
        self.charge_and_evaluate(request, &prepared, rng, &tracer)
    }

    /// Serves one measurement request with the service's own noise source and the
    /// cross-request cache: an identical repeat (same analyst, ε, and canonical
    /// optimized plan) returns the memoized response — byte-identical, data untouched,
    /// zero additional ε. Identical requests racing on a cold key single-flight behind
    /// one evaluation and one debit.
    pub fn serve(&self, request: &MeasureRequest) -> Result<Arc<MeasureResponse>, ServiceError> {
        self.serve_traced(request).map(|(response, _)| response)
    }

    /// [`serve`](Self::serve) plus the request's trace, when one was recorded.
    ///
    /// The tracer is live when the request set `"trace":true` (the trace comes back as
    /// the second tuple element, for the envelope layer to attach) or when the
    /// `WPINQ_TRACE` sink is configured (the trace goes to the sink; the response stays
    /// clean unless the request also asked). With neither, the tracer is the inert
    /// [`Tracer::disabled`] — no clock reads, no allocation — and `None` comes back.
    /// Either way the release bytes are identical; only observation differs.
    pub fn serve_traced(
        &self,
        request: &MeasureRequest,
    ) -> Result<(Arc<MeasureResponse>, Option<Trace>), ServiceError> {
        let tracer = if request.trace || trace_sink_enabled() {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        };
        tracer.field("analyst", request.analyst.as_str());
        tracer.field("epsilon", request.epsilon);

        let result = self.serve_with_tracer(request, &tracer);
        let trace = tracer.finish();
        if let Some(trace) = &trace {
            if trace_sink_enabled() {
                emit_to_sink(trace);
            }
        }
        result.map(|response| (response, if request.trace { trace } else { None }))
    }

    fn serve_with_tracer(
        &self,
        request: &MeasureRequest,
        tracer: &Tracer,
    ) -> Result<Arc<MeasureResponse>, ServiceError> {
        let prepared = self.prepare(request, tracer)?;
        for (dataset, _) in &prepared.generations {
            tracer.field("dataset", dataset.as_str());
        }
        if !self.cache_enabled {
            tracer.field("cache", "bypass");
            let mut rng = self.child_rng();
            return self
                .charge_and_evaluate(request, &prepared, &mut rng, tracer)
                .map(Arc::new);
        }
        let key = (
            request.analyst.clone(),
            request.epsilon.to_bits(),
            prepared.canonical.clone(),
            prepared.generations.clone(),
        );
        let (response, hit) = self.cache.get_or_compute(key, || {
            let mut rng = self.child_rng();
            self.charge_and_evaluate(request, &prepared, &mut rng, tracer)
                .map(Arc::new)
        })?;
        tracer.field("cache", if hit { "hit" } else { "miss" });
        if hit {
            self.audit
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(format!(
                "analyst {} replayed cached measurement {:016x} at epsilon {} (0 epsilon charged)",
                request.analyst,
                request.spec.canonical_hash(),
                request.epsilon
            ));
        }
        Ok(response)
    }

    /// The `remaining` quote for a response envelope, re-read from the live grants at
    /// assembly time. Cached responses are sealed artifacts computed once; quoting
    /// their stored `remaining` on a replay would report budgets the analyst has since
    /// spent down. Datasets whose grant has vanished fall back to the stored value.
    pub fn live_remaining(&self, analyst: &str, response: &MeasureResponse) -> Vec<(String, f64)> {
        response
            .remaining
            .iter()
            .map(|(dataset, stored)| {
                let live = self.budgets.remaining(analyst, dataset).unwrap_or(*stored);
                (dataset.clone(), live)
            })
            .collect()
    }

    /// Publishes service-level gauges onto the telemetry registry: per-grant ε spent
    /// and remaining (labelled by analyst and dataset) and the measurement cache's
    /// resident-entry count. Counters (requests, cache hits/misses/evictions, audit
    /// drops, pool dispatches, exchanges) increment live and need no sync. Called by
    /// the `stats` op and the Prometheus exposition endpoint before rendering.
    pub fn sync_metrics(&self) {
        for (analyst, dataset, spent, remaining) in self.budgets.snapshot() {
            let labels = [("analyst", analyst.as_str()), ("dataset", dataset.as_str())];
            registry()
                .gauge(
                    "wpinq_budget_epsilon_spent",
                    &labels,
                    "Privacy budget spent by one (analyst, dataset) grant.",
                )
                .set(spent);
            registry()
                .gauge(
                    "wpinq_budget_epsilon_remaining",
                    &labels,
                    "Privacy budget remaining in one (analyst, dataset) grant.",
                )
                .set(remaining);
        }
        registry()
            .gauge(
                "wpinq_cache_resident_entries",
                &[],
                "Measurement-cache keys currently resident (filled or in flight).",
            )
            .set(self.cache.len() as f64);
    }

    /// The `{"op":"stats"}` response: every registry metric as deterministic JSON,
    /// wrapped in an `{"ok":true,"stats":…}` envelope.
    pub fn stats_json(&self) -> Json {
        self.sync_metrics();
        let stats =
            Json::parse(&registry().render_json()).expect("the registry renders well-formed JSON");
        Json::Obj(vec![
            ("ok".to_string(), Json::Bool(true)),
            ("stats".to_string(), stats),
        ])
    }

    /// The concurrent JSON front door: parses a request envelope, serves it through
    /// [`serve_traced`](Self::serve_traced) (service noise, measurement cache,
    /// per-request tracing), and encodes the outcome with the request's `id` echoed.
    /// Errors come back as `{"ok":false,"id":…,"error":{"code":…,"message":…}}` instead
    /// of panicking. Also answers the sideband `{"op":"stats"}` request with the
    /// telemetry registry as JSON. This is the line handler every transport (stdin,
    /// TCP) calls; each call counts on [`REQUESTS_METRIC`] and observes its wall time
    /// on [`REQUEST_LATENCY_METRIC`].
    pub fn handle_line(&self, request_json: &str) -> String {
        let started = Instant::now();
        let response = self.handle_line_inner(request_json);
        request_latency_histogram().observe(started.elapsed().as_secs_f64() * 1e3);
        response
    }

    fn handle_line_inner(&self, request_json: &str) -> String {
        // The `stats` sideband op carries no measure-request header; only lines that
        // cannot be measure requests pay the extra parse.
        if !request_json.contains(REQUEST_HEADER) {
            if let Ok(json) = Json::parse(request_json) {
                if json.get("op").and_then(Json::as_str) == Some("stats") {
                    requests_ok_counter().inc();
                    return self.stats_json().to_compact();
                }
            }
        }
        let request = match MeasureRequest::from_json(request_json) {
            Ok(request) => request,
            Err(error) => {
                // The envelope didn't parse far enough to trust an id.
                requests_error_counter().inc();
                return ServiceError::from(error).to_json_with_id(None).to_compact();
            }
        };
        let id = request.id.as_deref();
        match self.serve_traced(&request) {
            Ok((response, trace)) => {
                requests_ok_counter().inc();
                let live = self.live_remaining(&request.analyst, &response);
                response
                    .to_json_envelope(id, Some(&live), trace.as_ref(), request.encoding)
                    .to_compact()
            }
            Err(error) => {
                requests_error_counter().inc();
                error.to_json_with_id(id).to_compact()
            }
        }
    }

    /// [`handle_line`](Self::handle_line) with a caller-supplied noise source (cache
    /// bypassed): the deterministic front door replay tests drive.
    pub fn handle_json<R: Rng + ?Sized>(&self, request_json: &str, rng: &mut R) -> String {
        let request = match MeasureRequest::from_json(request_json) {
            Ok(request) => request,
            Err(error) => {
                return ServiceError::from(error).to_json_with_id(None).to_compact();
            }
        };
        let id = request.id.as_deref();
        match self.measure(&request, rng) {
            Ok(response) => response
                .to_json_envelope(id, None, None, request.encoding)
                .to_compact(),
            Err(error) => error.to_json_with_id(id).to_compact(),
        }
    }
}

/// Parses the `output_type` field of a successful response envelope.
pub fn response_output_type(response: &Json) -> Result<ValueType, WireError> {
    value_type_from_json(
        response
            .get("output_type")
            .ok_or_else(|| WireError::new("response missing 'output_type'"))?,
    )
}
