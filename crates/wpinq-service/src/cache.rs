//! The cross-request measurement cache: "protect once, reuse forever" at the service
//! boundary.
//!
//! Section 2 of the paper makes noisy releases **post-processable**: once a measurement
//! has been paid for, anything derived from its bytes — including handing the same bytes
//! out again — costs no further privacy. [`MeasurementCache`] lifts that guarantee to
//! the service front door: a repeated identical request (same analyst, same ε, same
//! canonical optimized plan) returns the memoized release byte-identically, without
//! re-touching the protected data and without a second ε charge.
//!
//! The cache is **single-flight**: each key owns a slot whose lock is held for the
//! duration of the first computation, so N identical requests racing on a cold key
//! serialize behind one evaluation and one budget debit — the remaining N−1 get the
//! memoized value. Distinct keys never contend beyond the brief map lookup. A failed
//! computation evicts its slot, so a rejected request (say, over budget) is retried
//! from scratch once the analyst tops up.
//!
//! Two robustness properties matter because analysts are untrusted:
//!
//! * **Bounded residency.** Keys can be minted at negligible ε cost (ε may be
//!   arbitrarily small), so an unbounded cache would let an analyst grow server memory
//!   without limit. The cache holds at most `capacity` keys and evicts the least
//!   recently used resident entry to admit a new one. Evicting is always privacy-sound:
//!   it only means a later identical repeat is a *fresh* measurement with a fresh
//!   charge, exactly as if the cache were disabled for that key.
//! * **Panic containment.** A computation that panics must not wedge its key: all locks
//!   recover from poisoning (`PoisonError::into_inner`), and a panicked compute leaves
//!   its slot empty, so the next request for that key simply retries.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use wpinq_telemetry::{registry, Counter};

/// Registry name of the process-wide cache-hit counter (per-instance counts stay on
/// [`MeasurementCache::stats`]; these aggregate across every cache in the process).
pub const CACHE_HITS_METRIC: &str = "wpinq_cache_hits_total";
/// Registry name of the process-wide cache-miss counter.
pub const CACHE_MISSES_METRIC: &str = "wpinq_cache_misses_total";
/// Registry name of the process-wide cache-eviction counter.
pub const CACHE_EVICTIONS_METRIC: &str = "wpinq_cache_evictions_total";

fn hits_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            CACHE_HITS_METRIC,
            &[],
            "Measurement-cache lookups answered from a memoized value (zero epsilon charged).",
        )
    })
}

fn misses_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            CACHE_MISSES_METRIC,
            &[],
            "Measurement-cache lookups that computed (and paid for) a fresh value.",
        )
    })
}

fn evictions_counter() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| {
        registry().counter(
            CACHE_EVICTIONS_METRIC,
            &[],
            "Measurement-cache entries evicted to stay within the capacity bound.",
        )
    })
}

/// Counters of a [`MeasurementCache`], read via [`MeasurementCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from a memoized value (zero ε charged).
    pub hits: u64,
    /// Requests that computed (and paid for) a fresh value.
    pub misses: u64,
    /// Entries evicted to stay within the capacity bound.
    pub evictions: u64,
}

struct Slot<V> {
    cell: Mutex<Option<V>>,
}

impl<V> Default for Slot<V> {
    fn default() -> Self {
        Slot {
            cell: Mutex::new(None),
        }
    }
}

/// A resident cache entry: the single-flight slot plus its recency stamp.
struct Entry<V> {
    slot: Arc<Slot<V>>,
    last_used: u64,
}

struct Table<K, V> {
    entries: HashMap<K, Entry<V>>,
    /// Monotonic recency clock, bumped on every touch.
    tick: u64,
}

/// A single-flight, capacity-bounded memoization table keyed by `K` (for the
/// measurement service: analyst × ε-bits × canonical optimized plan encoding ×
/// dataset generations).
pub struct MeasurementCache<K, V> {
    table: Mutex<Table<K, V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for MeasurementCache<K, V> {
    fn default() -> Self {
        MeasurementCache::new()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> MeasurementCache<K, V> {
    /// An empty cache with no capacity bound (for call sites that bound keys
    /// themselves); services facing untrusted analysts should use
    /// [`with_capacity`](Self::with_capacity).
    pub fn new() -> Self {
        MeasurementCache::with_capacity(usize::MAX)
    }

    /// An empty cache holding at most `capacity` keys (clamped to ≥ 1); admitting a key
    /// beyond that evicts the least recently used resident entry.
    pub fn with_capacity(capacity: usize) -> Self {
        MeasurementCache {
            table: Mutex::new(Table {
                entries: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Returns the memoized value for `key`, or runs `compute` to fill it. The boolean
    /// is `true` on a hit (the value came from the cache; `compute` did not run).
    ///
    /// The slot lock is held across `compute`, so concurrent callers with the *same* key
    /// block until the first finishes and then hit; callers with different keys proceed
    /// in parallel. An `Err` from `compute` evicts the slot and propagates — nothing is
    /// memoized, and the error is observed only by callers that raced this attempt. A
    /// *panic* from `compute` unwinds to the caller but leaves the slot empty and its
    /// lock recoverable, so the next request for the key retries instead of wedging.
    pub fn get_or_compute<E>(
        &self,
        key: K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), E> {
        let slot = {
            let mut table = self.table.lock().unwrap_or_else(PoisonError::into_inner);
            table.tick += 1;
            let tick = table.tick;
            if let Some(entry) = table.entries.get_mut(&key) {
                entry.last_used = tick;
                entry.slot.clone()
            } else {
                if table.entries.len() >= self.capacity {
                    self.evict_lru(&mut table);
                }
                let slot = Arc::new(Slot::default());
                table.entries.insert(
                    key.clone(),
                    Entry {
                        slot: slot.clone(),
                        last_used: tick,
                    },
                );
                slot
            }
        };
        let mut cell = slot.cell.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(value) = cell.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            hits_counter().inc();
            return Ok((value.clone(), true));
        }
        match compute() {
            Ok(value) => {
                *cell = Some(value.clone());
                self.misses.fetch_add(1, Ordering::Relaxed);
                misses_counter().inc();
                Ok((value, false))
            }
            Err(error) => {
                drop(cell);
                // Evict only our own slot: a racing success may already have replaced it.
                let mut table = self.table.lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(current) = table.entries.get(&key) {
                    if Arc::ptr_eq(&current.slot, &slot) {
                        table.entries.remove(&key);
                    }
                }
                Err(error)
            }
        }
    }

    /// Drops the least recently used entry, preferring one no request is currently
    /// computing in (an in-flight slot still finishes — its racers hold the `Arc` — but
    /// its value would never be served again, wasting the charge that produced it).
    fn evict_lru(&self, table: &mut Table<K, V>) {
        let victim = {
            let idle = table
                .entries
                .iter()
                .filter(|(_, entry)| Arc::strong_count(&entry.slot) == 1)
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone());
            idle.or_else(|| {
                table
                    .entries
                    .iter()
                    .min_by_key(|(_, entry)| entry.last_used)
                    .map(|(key, _)| key.clone())
            })
        };
        if let Some(key) = victim {
            table.entries.remove(&key);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            evictions_counter().inc();
        }
    }

    /// Drops every entry whose key fails `keep`. The service calls this when a dataset
    /// is re-registered: the generation stamp in the key already makes stale entries
    /// unreachable, and `retain` additionally frees their memory right away.
    pub fn retain(&self, mut keep: impl FnMut(&K) -> bool) {
        self.table
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entries
            .retain(|key, _| keep(key));
    }

    /// Hit/miss/eviction counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Number of keys currently resident (filled or in flight).
    pub fn len(&self) -> usize {
        self.table
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entries
            .len()
    }

    /// `true` when no key is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K, V> std::fmt::Debug for MeasurementCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MeasurementCache(hits={}, misses={}, evictions={})",
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_without_recomputing() {
        let cache: MeasurementCache<String, u64> = MeasurementCache::new();
        let mut runs = 0;
        let (v, hit) = cache
            .get_or_compute::<()>("k".to_string(), || {
                runs += 1;
                Ok(7)
            })
            .unwrap();
        assert_eq!((v, hit, runs), (7, false, 1));
        let (v, hit) = cache
            .get_or_compute::<()>("k".to_string(), || {
                runs += 1;
                Ok(99)
            })
            .unwrap();
        assert_eq!((v, hit, runs), (7, true, 1), "hit must not recompute");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
    }

    #[test]
    fn errors_evict_and_allow_retry() {
        let cache: MeasurementCache<String, u64> = MeasurementCache::new();
        assert!(cache
            .get_or_compute("k".to_string(), || Err::<u64, &str>("nope"))
            .is_err());
        assert!(
            cache.is_empty(),
            "failed computation must not stay resident"
        );
        let (v, hit) = cache
            .get_or_compute::<()>("k".to_string(), || Ok(5))
            .unwrap();
        assert_eq!((v, hit), (5, false));
    }

    #[test]
    fn panicking_compute_does_not_wedge_the_key() {
        let cache: Arc<MeasurementCache<String, u64>> = Arc::new(MeasurementCache::new());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cache.get_or_compute::<()>("k".to_string(), || panic!("boom"));
        }));
        assert!(result.is_err(), "the panic propagates to the caller");
        // The key is not wedged: the next request recomputes and succeeds.
        let (v, hit) = cache
            .get_or_compute::<()>("k".to_string(), || Ok(5))
            .unwrap();
        assert_eq!((v, hit), (5, false), "retry recomputes after a panic");
        // And from here on it caches normally.
        let (v, hit) = cache
            .get_or_compute::<()>("k".to_string(), || Ok(99))
            .unwrap();
        assert_eq!((v, hit), (5, true));
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used() {
        let cache: MeasurementCache<u32, u64> = MeasurementCache::with_capacity(2);
        cache.get_or_compute::<()>(1, || Ok(10)).unwrap();
        cache.get_or_compute::<()>(2, || Ok(20)).unwrap();
        // Touch 1 so 2 becomes the LRU victim.
        cache.get_or_compute::<()>(1, || Ok(0)).unwrap();
        cache.get_or_compute::<()>(3, || Ok(30)).unwrap();
        assert_eq!(cache.len(), 2, "capacity is a hard bound");
        // 1 survived, 2 was evicted (a repeat recomputes), 3 is resident.
        let (v, hit) = cache.get_or_compute::<()>(1, || Ok(0)).unwrap();
        assert_eq!((v, hit), (10, true));
        let (v, hit) = cache.get_or_compute::<()>(2, || Ok(21)).unwrap();
        assert_eq!((v, hit), (21, false), "evicted key recomputes");
        assert_eq!(cache.stats().evictions, 2, "admitting 3 and re-admitting 2");
    }

    #[test]
    fn racing_identical_keys_compute_exactly_once() {
        let cache: Arc<MeasurementCache<u32, u64>> = Arc::new(MeasurementCache::new());
        let runs = Arc::new(AtomicU64::new(0));
        let values: Vec<u64> = std::thread::scope(|scope| {
            let threads: Vec<_> = (0..8)
                .map(|_| {
                    let cache = cache.clone();
                    let runs = runs.clone();
                    scope.spawn(move || {
                        let (v, _) = cache
                            .get_or_compute::<()>(1, || {
                                runs.fetch_add(1, Ordering::Relaxed);
                                // Widen the race window: the slot lock must still
                                // serialize every identical request behind this compute.
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                Ok(42)
                            })
                            .unwrap();
                        v
                    })
                })
                .collect();
            threads.into_iter().map(|t| t.join().unwrap()).collect()
        });
        assert!(values.iter().all(|&v| v == 42));
        assert_eq!(
            runs.load(Ordering::Relaxed),
            1,
            "single-flight: one compute"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }
}
