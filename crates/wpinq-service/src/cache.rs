//! The cross-request measurement cache: "protect once, reuse forever" at the service
//! boundary.
//!
//! Section 2 of the paper makes noisy releases **post-processable**: once a measurement
//! has been paid for, anything derived from its bytes — including handing the same bytes
//! out again — costs no further privacy. [`MeasurementCache`] lifts that guarantee to
//! the service front door: a repeated identical request (same analyst, same ε, same
//! canonical optimized plan) returns the memoized release byte-identically, without
//! re-touching the protected data and without a second ε charge.
//!
//! The cache is **single-flight**: each key owns a slot whose lock is held for the
//! duration of the first computation, so N identical requests racing on a cold key
//! serialize behind one evaluation and one budget debit — the remaining N−1 get the
//! memoized value. Distinct keys never contend beyond the brief map lookup. A failed
//! computation evicts its slot, so a rejected request (say, over budget) is retried
//! from scratch once the analyst tops up.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss counters of a [`MeasurementCache`], read via [`MeasurementCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests answered from a memoized value (zero ε charged).
    pub hits: u64,
    /// Requests that computed (and paid for) a fresh value.
    pub misses: u64,
}

struct Slot<V> {
    cell: Mutex<Option<V>>,
}

impl<V> Default for Slot<V> {
    fn default() -> Self {
        Slot {
            cell: Mutex::new(None),
        }
    }
}

/// A single-flight memoization table keyed by `K` (for the measurement service:
/// analyst × ε-bits × canonical optimized plan encoding).
pub struct MeasurementCache<K, V> {
    slots: Mutex<HashMap<K, Arc<Slot<V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for MeasurementCache<K, V> {
    fn default() -> Self {
        MeasurementCache::new()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> MeasurementCache<K, V> {
    /// An empty cache.
    pub fn new() -> Self {
        MeasurementCache {
            slots: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the memoized value for `key`, or runs `compute` to fill it. The boolean
    /// is `true` on a hit (the value came from the cache; `compute` did not run).
    ///
    /// The slot lock is held across `compute`, so concurrent callers with the *same* key
    /// block until the first finishes and then hit; callers with different keys proceed
    /// in parallel. An `Err` from `compute` evicts the slot and propagates — nothing is
    /// memoized, and the error is observed only by callers that raced this attempt.
    pub fn get_or_compute<E>(
        &self,
        key: K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), E> {
        let slot = self
            .slots
            .lock()
            .expect("cache map poisoned")
            .entry(key.clone())
            .or_default()
            .clone();
        let mut cell = slot.cell.lock().expect("cache slot poisoned");
        if let Some(value) = cell.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((value.clone(), true));
        }
        match compute() {
            Ok(value) => {
                *cell = Some(value.clone());
                self.misses.fetch_add(1, Ordering::Relaxed);
                Ok((value, false))
            }
            Err(error) => {
                drop(cell);
                // Evict only our own slot: a racing success may already have replaced it.
                let mut slots = self.slots.lock().expect("cache map poisoned");
                if let Some(current) = slots.get(&key) {
                    if Arc::ptr_eq(current, &slot) {
                        slots.remove(&key);
                    }
                }
                Err(error)
            }
        }
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of keys currently resident (filled or in flight).
    pub fn len(&self) -> usize {
        self.slots.lock().expect("cache map poisoned").len()
    }

    /// `true` when no key is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<K, V> std::fmt::Debug for MeasurementCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MeasurementCache(hits={}, misses={})",
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_without_recomputing() {
        let cache: MeasurementCache<String, u64> = MeasurementCache::new();
        let mut runs = 0;
        let (v, hit) = cache
            .get_or_compute::<()>("k".to_string(), || {
                runs += 1;
                Ok(7)
            })
            .unwrap();
        assert_eq!((v, hit, runs), (7, false, 1));
        let (v, hit) = cache
            .get_or_compute::<()>("k".to_string(), || {
                runs += 1;
                Ok(99)
            })
            .unwrap();
        assert_eq!((v, hit, runs), (7, true, 1), "hit must not recompute");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn errors_evict_and_allow_retry() {
        let cache: MeasurementCache<String, u64> = MeasurementCache::new();
        assert!(cache
            .get_or_compute("k".to_string(), || Err::<u64, &str>("nope"))
            .is_err());
        assert!(
            cache.is_empty(),
            "failed computation must not stay resident"
        );
        let (v, hit) = cache
            .get_or_compute::<()>("k".to_string(), || Ok(5))
            .unwrap();
        assert_eq!((v, hit), (5, false));
    }

    #[test]
    fn racing_identical_keys_compute_exactly_once() {
        let cache: Arc<MeasurementCache<u32, u64>> = Arc::new(MeasurementCache::new());
        let runs = Arc::new(AtomicU64::new(0));
        let values: Vec<u64> = std::thread::scope(|scope| {
            let threads: Vec<_> = (0..8)
                .map(|_| {
                    let cache = cache.clone();
                    let runs = runs.clone();
                    scope.spawn(move || {
                        let (v, _) = cache
                            .get_or_compute::<()>(1, || {
                                runs.fetch_add(1, Ordering::Relaxed);
                                // Widen the race window: the slot lock must still
                                // serialize every identical request behind this compute.
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                Ok(42)
                            })
                            .unwrap();
                        v
                    })
                })
                .collect();
            threads.into_iter().map(|t| t.join().unwrap()).collect()
        });
        assert!(values.iter().all(|&v| v == 42));
        assert_eq!(
            runs.load(Ordering::Relaxed),
            1,
            "single-flight: one compute"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }
}
