//! Release-encoding negotiation: `"encoding":"columnar"` swaps the envelope's JSON
//! release array for a base64 colwire frame — and nothing else. The decoded frame must
//! re-encode to the **byte-identical** release JSON the default envelope prints, the ε
//! debit must be identical, and the encoding must be invisible to the measurement cache
//! (a columnar request replays a JSON-filled cache entry and vice versa, charging
//! nothing).

use wpinq::plan::executor_for_threads;
use wpinq::prelude::*;
use wpinq_analyses::degree::degree_ccdf_plan_expr;
use wpinq_analyses::edges::{symmetric_edge_dataset, EDGES_DATASET};
use wpinq_expr::Json;
use wpinq_graph::Graph;
use wpinq_service::service::response_output_type;
use wpinq_service::{
    release_records_from_response, release_records_json, MeasureRequest, MeasurementService,
    ResponseEncoding,
};

const SEED: u64 = 41;
const EPSILON: f64 = 0.25;

fn toy_graph() -> Graph {
    Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5)])
}

fn service_for(threads: usize) -> MeasurementService {
    let service = MeasurementService::new()
        .with_executor(executor_for_threads(threads))
        .with_noise_seed(SEED);
    service
        .register(EDGES_DATASET, &symmetric_edge_dataset(&toy_graph()))
        .unwrap();
    service
        .grant("analyst", EDGES_DATASET, PrivacyBudget::new(10.0))
        .unwrap();
    service
}

fn ccdf_request(encoding: ResponseEncoding, id: &str) -> MeasureRequest {
    MeasureRequest {
        analyst: "analyst".into(),
        epsilon: EPSILON,
        spec: degree_ccdf_plan_expr(&Plan::source_expr(EDGES_DATASET))
            .to_spec()
            .expect("expression plans serialize"),
        id: Some(id.into()),
        trace: false,
        encoding,
    }
}

/// Decodes whichever release field the envelope carries and re-encodes it as the
/// canonical release JSON (the byte-exact comparison form).
fn canonical_release(response: &str) -> String {
    let json = Json::parse(response).expect("response is JSON");
    assert_eq!(
        json.get("ok").and_then(Json::as_bool),
        Some(true),
        "{response}"
    );
    let ty = response_output_type(&json).expect("output_type present");
    let records = release_records_from_response(&json, &ty).expect("release decodes");
    release_records_json(&records).to_compact()
}

/// The columnar envelope decodes to the byte-identical release and identical ε debit as
/// the JSON envelope, under the sequential, 2-shard, and 8-shard executors.
#[test]
fn columnar_envelope_matches_json_envelope_bytes_and_debits() {
    for threads in [1usize, 2, 8] {
        let json_service = service_for(threads);
        let col_service = service_for(threads);

        let json_response =
            json_service.handle_line(&ccdf_request(ResponseEncoding::Json, "j").to_json_string());
        let col_response = col_service
            .handle_line(&ccdf_request(ResponseEncoding::Columnar, "c").to_json_string());

        assert!(
            json_response.contains("\"release\":") && !json_response.contains("release_columnar"),
            "default envelope keeps the JSON release array ({threads} threads)"
        );
        assert!(
            col_response.contains("\"release_columnar\":\"")
                && !col_response.contains("\"release\":"),
            "columnar envelope replaces the release array ({threads} threads): {col_response}"
        );
        assert_eq!(
            canonical_release(&json_response),
            canonical_release(&col_response),
            "the two encodings must decode to identical release bytes ({threads} threads)"
        );
        let spent_json = 10.0 - json_service.remaining("analyst", EDGES_DATASET).unwrap();
        let spent_col = 10.0 - col_service.remaining("analyst", EDGES_DATASET).unwrap();
        assert_eq!(
            spent_json.to_bits(),
            spent_col.to_bits(),
            "the encoding must not change the debit ({threads} threads)"
        );
    }
}

/// The encoding is not part of the measurement-cache key: a columnar repeat of a JSON
/// request replays the cached release (zero extra ε) as a columnar frame that decodes to
/// the same bytes.
#[test]
fn encoding_replays_the_cached_release() {
    let service = service_for(1);
    let first = service.handle_line(&ccdf_request(ResponseEncoding::Json, "a").to_json_string());
    let spent = 10.0 - service.remaining("analyst", EDGES_DATASET).unwrap();
    let second =
        service.handle_line(&ccdf_request(ResponseEncoding::Columnar, "b").to_json_string());
    assert!(second.contains("\"release_columnar\":\""), "{second}");
    assert_eq!(
        canonical_release(&first),
        canonical_release(&second),
        "the cached release replays byte-identically under the other encoding"
    );
    let spent_after = 10.0 - service.remaining("analyst", EDGES_DATASET).unwrap();
    assert_eq!(
        spent.to_bits(),
        spent_after.to_bits(),
        "replay charges nothing"
    );
}

/// Unknown encodings are rejected up front — a wire error, before any budget moves.
#[test]
fn unknown_encoding_is_rejected_without_charging() {
    let service = service_for(1);
    let mut line = ccdf_request(ResponseEncoding::Json, "x").to_json_string();
    line = line.replacen("\"analyst\":", "\"encoding\":\"arrow\",\"analyst\":", 1);
    let response = service.handle_line(&line);
    assert!(
        response.contains("\"ok\":false") && response.contains("encoding"),
        "{response}"
    );
    let remaining = service.remaining("analyst", EDGES_DATASET).unwrap();
    assert_eq!(remaining.to_bits(), 10.0f64.to_bits(), "nothing charged");
}

/// The typed client round-trips identically under either negotiated encoding.
#[test]
fn typed_client_decodes_both_encodings_identically() {
    use std::sync::Arc;
    use wpinq_service::{Client, InProcess};
    let json_service = Arc::new(service_for(1));
    let col_service = Arc::new(service_for(1));
    let source = Plan::<(u32, u32)>::source_expr(EDGES_DATASET);
    let plan = degree_ccdf_plan_expr(&source);

    let json_client = Client::new(InProcess::new(json_service), "analyst");
    let col_client = Client::new(InProcess::new(col_service), "analyst")
        .with_encoding(ResponseEncoding::Columnar);

    let a = json_client.measure(&plan, EPSILON).unwrap();
    let b = col_client.measure(&plan, EPSILON).unwrap();
    assert_eq!(a.records, b.records, "typed records identical");
    assert!(b.raw.contains("release_columnar"), "{}", b.raw);
}
