//! Concurrency properties of the measurement service, exercised over real TCP loopback
//! connections and in-process threads.
//!
//! These are the service-level privacy invariants of the paper's agent model under
//! concurrency:
//!
//! * budgets never over-debit, no matter how many analyst threads hammer one grant —
//!   the check-and-hold of the two-phase debit is atomic per grant;
//! * multi-dataset debits are all-or-nothing — interleaved requests that touch the same
//!   grants in different orders can neither deadlock nor leave a partial charge;
//! * an identical repeated request is answered from the measurement cache
//!   byte-identically with **zero** additional ε — including when the identical
//!   requests race on a cold cache (single-flight: exactly one evaluation, one charge).

use std::sync::Arc;

use wpinq::plan::executor_for_threads;
use wpinq::{Expr, Plan, PrivacyBudget, WeightedDataset};
use wpinq_service::{serve_tcp, Client, ClientError, InProcess, MeasurementService, Tcp};

fn edge_data() -> WeightedDataset<(u32, u32)> {
    let undirected = [(0u32, 1u32), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5)];
    WeightedDataset::from_records(undirected.iter().flat_map(|&(a, b)| [(a, b), (b, a)]))
}

/// A cheap multiplicity-1 plan over one named edge source.
fn degree_plan(dataset: &str) -> Plan<u64> {
    Plan::<(u32, u32)>::source_expr(dataset)
        .select_expr::<u32>(Expr::input().field(0))
        .shave_const(1.0)
        .select_expr::<u64>(Expr::input().field(1))
}

/// Budgets never over-debit: 8 TCP client threads race 10 debits of 0.5 each against a
/// 10.0 grant. Exactly 20 can win; the losers are rejected with `budget_exceeded`; the
/// final expenditure is exactly the grant. The cache is disabled so every request is a
/// genuine fresh debit.
#[test]
fn concurrent_tcp_clients_never_over_debit_one_grant() {
    let service = Arc::new(MeasurementService::new().with_measurement_cache(false));
    service.register("edges", &edge_data()).unwrap();
    service
        .grant("hammer", "edges", PrivacyBudget::new(10.0))
        .unwrap();
    let server = serve_tcp(service.clone(), "127.0.0.1:0", 8).expect("loopback server");
    let addr = server.local_addr().to_string();

    let plan = degree_plan("edges");
    let outcomes: Vec<Result<(), ClientError>> = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                let plan = &plan;
                scope.spawn(move || {
                    let client = Client::new(Tcp::new(addr), "hammer");
                    (0..10)
                        .map(|_| client.measure::<u64>(plan, 0.5).map(|_| ()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        threads
            .into_iter()
            .flat_map(|t| t.join().expect("client thread"))
            .collect()
    });

    let successes = outcomes.iter().filter(|r| r.is_ok()).count();
    assert_eq!(successes, 20, "exactly the affordable debits succeed");
    for outcome in &outcomes {
        if let Err(error) = outcome {
            assert!(
                matches!(error, ClientError::Rejected { code, .. } if code == "budget_exceeded"),
                "losers must be clean budget rejections, got {error}"
            );
        }
    }
    let remaining = service.remaining("hammer", "edges").unwrap();
    assert!(
        remaining.abs() < 1e-9,
        "grant must be exactly exhausted, never over-debited: {remaining} left"
    );
    server.shutdown();
}

/// Interleaved multi-dataset requests neither deadlock nor leave partial charges. Two
/// plans touch grants (a, b) — one phrased a-then-b, the other b-then-a — while the `b`
/// grant is the scarce one. Reservation order is canonical (sorted dataset names), so
/// the race completes; rollback on the scarce grant's rejection keeps both grants'
/// expenditures in lock-step.
#[test]
fn interleaved_multi_dataset_requests_are_all_or_nothing() {
    let service = Arc::new(MeasurementService::new().with_measurement_cache(false));
    service.register("a", &edge_data()).unwrap();
    service.register("b", &edge_data()).unwrap();
    // `a` is ample (it never rejects, so the win count is deterministic); `b` is scarce.
    // Every rejection therefore happens on `b`, *after* a hold was taken on `a` — the
    // hold must roll back, or the two expenditures drift apart.
    service.grant("x", "a", PrivacyBudget::new(100.0)).unwrap();
    service.grant("x", "b", PrivacyBudget::new(2.0)).unwrap();

    // Each request touches both datasets at multiplicity 1 ⇒ costs 0.5 from each grant.
    let ab = Plan::<(u32, u32)>::source_expr("a").union(&Plan::<(u32, u32)>::source_expr("b"));
    let ba = Plan::<(u32, u32)>::source_expr("b").union(&Plan::<(u32, u32)>::source_expr("a"));

    let successes: usize = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let service = service.clone();
                let plan = if i % 2 == 0 { ab.clone() } else { ba.clone() };
                scope.spawn(move || {
                    let client = Client::new(InProcess::new(service), "x");
                    (0..3)
                        .filter(|_| client.measure::<(u32, u32)>(&plan, 0.5).is_ok())
                        .count()
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).sum()
    });

    // The scarce grant admits exactly 4 × (2 × 0.5); each success debits both grants.
    assert_eq!(successes, 4, "the scarce grant bounds the wins");
    let spent_a = 100.0 - service.remaining("x", "a").unwrap();
    let spent_b = 2.0 - service.remaining("x", "b").unwrap();
    assert!(
        (spent_a - spent_b).abs() < 1e-9,
        "partial charge detected: a spent {spent_a}, b spent {spent_b}"
    );
    assert!(
        (spent_b - 2.0).abs() < 1e-9,
        "b exactly exhausted: {spent_b}"
    );
}

/// A repeated identical request is byte-identical with zero extra ε — across executors,
/// and with the very same bytes over TCP and in-process (one shared cache).
#[test]
fn cached_repeat_is_byte_identical_and_free_across_executors() {
    for threads in [1usize, 2, 8] {
        let service =
            Arc::new(MeasurementService::new().with_executor(executor_for_threads(threads)));
        service.register("edges", &edge_data()).unwrap();
        service
            .grant("alice", "edges", PrivacyBudget::new(1.0))
            .unwrap();
        let server = serve_tcp(service.clone(), "127.0.0.1:0", 2).expect("loopback server");

        let tcp = Client::new(Tcp::new(server.local_addr().to_string()), "alice");
        let plan = degree_plan("edges");
        let first = tcp
            .measure_with_id(&plan, 0.25, Some("q".into()))
            .expect("cold measurement");
        let spent_once = 1.0 - service.remaining("alice", "edges").unwrap();
        assert!((spent_once - 0.25).abs() < 1e-12);

        let second = tcp
            .measure_with_id(&plan, 0.25, Some("q".into()))
            .expect("cached repeat over TCP");
        assert_eq!(
            first.raw, second.raw,
            "{threads}-thread executor: repeat must be byte-identical"
        );

        // The same request through a different transport hits the same cache entry.
        let inproc = Client::new(InProcess::new(service.clone()), "alice");
        let third = inproc
            .measure_with_id(&plan, 0.25, Some("q".into()))
            .expect("cached repeat in-process");
        assert_eq!(first.raw, third.raw, "transport leaves no fingerprint");

        let spent_after_repeats = 1.0 - service.remaining("alice", "edges").unwrap();
        assert!(
            (spent_after_repeats - spent_once).abs() < 1e-12,
            "replays must charge zero epsilon"
        );
        assert_eq!(service.cache_stats().hits, 2);
        assert_eq!(service.cache_stats().misses, 1);
        // The audit log records the replays.
        let replays = service
            .audit_log()
            .iter()
            .filter(|entry| entry.contains("replayed cached measurement"))
            .count();
        assert_eq!(replays, 2);
        server.shutdown();
    }
}

/// Identical requests racing on a **cold** cache single-flight: one evaluation, one
/// charge, and every racer gets the same bytes.
#[test]
fn racing_identical_requests_charge_exactly_once() {
    let service = Arc::new(MeasurementService::new());
    service.register("edges", &edge_data()).unwrap();
    service
        .grant("alice", "edges", PrivacyBudget::new(1.0))
        .unwrap();
    let server = serve_tcp(service.clone(), "127.0.0.1:0", 8).expect("loopback server");
    let addr = server.local_addr().to_string();

    let plan = degree_plan("edges");
    let raws: Vec<String> = std::thread::scope(|scope| {
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                let plan = &plan;
                scope.spawn(move || {
                    let client = Client::new(Tcp::new(addr), "alice");
                    client
                        .measure_with_id::<u64>(plan, 0.5, Some("race".into()))
                        .expect("racing measurement")
                        .raw
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    });

    assert!(
        raws.iter().all(|raw| *raw == raws[0]),
        "all racers must receive identical bytes"
    );
    let spent = 1.0 - service.remaining("alice", "edges").unwrap();
    assert!(
        (spent - 0.5).abs() < 1e-12,
        "exactly one charge despite 8 racers: spent {spent}"
    );
    let stats = service.cache_stats();
    assert_eq!(stats.misses, 1, "single-flight: one evaluation");
    assert_eq!(stats.hits, 7);
    server.shutdown();
}

/// A total cost that overflows f64 (`multiplicity × ε = ∞`) is a clean
/// `invalid_parameter` rejection — not a panic that would poison the grant's lock,
/// wedge the cache slot, and kill the serving worker. The server runs a *single*
/// worker so a dead worker could not hide behind the pool.
#[test]
fn overflowing_total_cost_is_rejected_not_a_panic() {
    let service = Arc::new(MeasurementService::new());
    service.register("edges", &edge_data()).unwrap();
    service
        .grant("alice", "edges", PrivacyBudget::new(1.0))
        .unwrap();
    let server = serve_tcp(service.clone(), "127.0.0.1:0", 1).expect("loopback server");
    let client = Client::new(Tcp::new(server.local_addr().to_string()), "alice");

    // Two distinct chains over the same source: multiplicity 2, so 2 × 1e308 = ∞.
    let edges = Plan::<(u32, u32)>::source_expr("edges");
    let twice = edges
        .select_expr::<u32>(Expr::input().field(0))
        .union(&edges.select_expr::<u32>(Expr::input().field(1)));
    let err = client.measure::<u32>(&twice, 1e308).unwrap_err();
    assert!(
        matches!(&err, ClientError::Rejected { code, .. } if code == "invalid_parameter"),
        "overflowing cost must be a clean parameter rejection, got {err}"
    );
    assert!(
        (service.remaining("alice", "edges").unwrap() - 1.0).abs() < 1e-12,
        "nothing may be charged"
    );

    // The worker, the grant, and the cache key all survive: the same connection
    // serves a normal measurement (and its cached repeat) afterwards.
    let plan = degree_plan("edges");
    let first = client
        .measure_with_id::<u64>(&plan, 0.5, None)
        .expect("service must stay healthy after the rejection");
    let repeat = client
        .measure_with_id::<u64>(&plan, 0.5, None)
        .expect("cache must stay healthy too");
    assert_eq!(first.raw, repeat.raw);
    server.shutdown();
}

/// Re-registering a dataset invalidates its cache entries: the memoized release was
/// computed over data that no longer exists, so the same request afterwards is a
/// fresh — and freshly charged — measurement of the new data, and caching then
/// resumes normally at the new generation.
#[test]
fn re_registering_a_dataset_invalidates_its_cache_entries() {
    let service = Arc::new(MeasurementService::new());
    service.register("edges", &edge_data()).unwrap();
    service
        .grant("alice", "edges", PrivacyBudget::new(5.0))
        .unwrap();
    let client = Client::new(InProcess::new(service.clone()), "alice");
    let plan = degree_plan("edges");

    let first = client.measure_with_id::<u64>(&plan, 0.5, None).unwrap();
    let replay = client.measure_with_id::<u64>(&plan, 0.5, None).unwrap();
    assert_eq!(first.raw, replay.raw, "same data: the repeat replays");
    assert!((service.remaining("alice", "edges").unwrap() - 4.5).abs() < 1e-12);

    let replaced = WeightedDataset::from_records([(0u32, 1u32), (1, 0), (1, 2), (2, 1)]);
    service.register("edges", &replaced).unwrap();

    let fresh = client.measure_with_id::<u64>(&plan, 0.5, None).unwrap();
    assert!(
        (service.remaining("alice", "edges").unwrap() - 4.0).abs() < 1e-12,
        "a measurement of the replaced data must be charged like any fresh one"
    );
    let stats = service.cache_stats();
    assert_eq!(
        (stats.misses, stats.hits),
        (2, 1),
        "the repeat after re-registration recomputes"
    );
    // At the new generation the cache works as usual again.
    let fresh_replay = client.measure_with_id::<u64>(&plan, 0.5, None).unwrap();
    assert_eq!(fresh.raw, fresh_replay.raw);
    assert!((service.remaining("alice", "edges").unwrap() - 4.0).abs() < 1e-12);
}

/// The cache's capacity bound holds at the service level: with room for one entry, a
/// second distinct request evicts the first, whose repeat then recomputes (and pays
/// again — eviction is privacy-neutral, it only forfeits the reuse discount).
#[test]
fn cache_capacity_bounds_residency() {
    let service = Arc::new(MeasurementService::new().with_cache_capacity(1));
    service.register("edges", &edge_data()).unwrap();
    service
        .grant("alice", "edges", PrivacyBudget::new(5.0))
        .unwrap();
    let client = Client::new(InProcess::new(service.clone()), "alice");
    let plan = degree_plan("edges");

    client.measure_with_id::<u64>(&plan, 0.5, None).unwrap();
    client.measure_with_id::<u64>(&plan, 0.25, None).unwrap(); // distinct key: evicts
    client.measure_with_id::<u64>(&plan, 0.5, None).unwrap(); // evicted: recomputes
    let stats = service.cache_stats();
    assert_eq!((stats.misses, stats.hits), (3, 0));
    assert!(stats.evictions >= 1);
    assert!(
        (service.remaining("alice", "edges").unwrap() - 3.75).abs() < 1e-12,
        "every recomputation pays"
    );
}

/// Distinct cache keys stay distinct: a different analyst, a different ε, or a
/// different plan each pays its own way (no cross-analyst or cross-ε leakage).
#[test]
fn cache_keys_separate_analysts_epsilons_and_plans() {
    let service = Arc::new(MeasurementService::new());
    service.register("edges", &edge_data()).unwrap();
    service
        .grant("alice", "edges", PrivacyBudget::new(5.0))
        .unwrap();
    service
        .grant("bob", "edges", PrivacyBudget::new(5.0))
        .unwrap();

    let alice = Client::new(InProcess::new(service.clone()), "alice");
    let bob = Client::new(InProcess::new(service.clone()), "bob");
    let plan = degree_plan("edges");

    let a1 = alice.measure_with_id::<u64>(&plan, 0.5, None).unwrap();
    let b1 = bob.measure_with_id::<u64>(&plan, 0.5, None).unwrap();
    let a2 = alice.measure_with_id::<u64>(&plan, 0.25, None).unwrap();
    assert_ne!(a1.raw, b1.raw, "per-analyst noise must differ");
    assert_ne!(a1.raw, a2.raw, "per-epsilon releases must differ");
    assert_eq!(service.cache_stats().misses, 3);
    assert_eq!(service.cache_stats().hits, 0);
    assert!((service.remaining("alice", "edges").unwrap() - 4.25).abs() < 1e-12);
    assert!((service.remaining("bob", "edges").unwrap() - 4.5).abs() < 1e-12);
}
