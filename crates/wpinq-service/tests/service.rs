//! End-to-end service tests: every built-in analysis, re-expressed in the expression
//! language, round-trips through `PlanSpec` **bytes** and releases byte-identically to
//! its closure-built twin — while the service debits exactly `multiplicity × ε` from the
//! right analyst's grant. Error paths must reject without charging.

// These tests pin the service's noise stream for byte-equality, which is exactly what
// the deprecated caller-rng `ServiceClient` shim exists for.
#![allow(deprecated)]

use rand::rngs::StdRng;
use rand::SeedableRng;

use wpinq::plan::{PlanBindings, SequentialExecutor};
use wpinq::prelude::*;
use wpinq::PlanSpec;
use wpinq_analyses::degree::{
    degree_ccdf_plan, degree_ccdf_plan_expr, degree_sequence_plan, degree_sequence_plan_expr,
};
use wpinq_analyses::edges::{
    edge_count_plan, edge_count_plan_expr, symmetric_edge_dataset, EDGES_DATASET,
};
use wpinq_analyses::jdd::{jdd_plan, jdd_plan_expr};
use wpinq_analyses::nodes::{node_count_plan, node_count_plan_expr, nodes_plan, nodes_plan_expr};
use wpinq_analyses::squares::{sbd_plan, sbd_plan_expr};
use wpinq_analyses::triangles::{tbd_plan, tbd_plan_expr};
use wpinq_expr::Json;
use wpinq_graph::Graph;
use wpinq_service::{
    release_to_json, MeasureRequest, MeasurementService, ResponseEncoding, ServiceClient,
};

const SEED: u64 = 2014;
const EPSILON: f64 = 0.25;

fn toy_graph() -> Graph {
    // Two triangles sharing a vertex plus a tail: enough structure for every query.
    Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5)])
}

fn service_with(graph: &Graph, analyst: &str, budget: f64) -> MeasurementService {
    let service = MeasurementService::new();
    service
        .register(EDGES_DATASET, &symmetric_edge_dataset(graph))
        .unwrap();
    service
        .grant(analyst, EDGES_DATASET, PrivacyBudget::new(budget))
        .unwrap();
    service
}

/// The local reference: the closure-built plan, measured in its typed form.
fn local_release<T: ExprRecord>(
    plan: &Plan<T>,
    source: &Plan<(u32, u32)>,
    graph: &Graph,
) -> String {
    let mut bindings = PlanBindings::new();
    bindings.bind(source, symmetric_edge_dataset(graph));
    let counts = plan.noisy_count(EPSILON).release_with(
        &bindings,
        &SequentialExecutor,
        &mut StdRng::seed_from_u64(SEED),
    );
    release_to_json(&counts)
}

/// Ships the expr plan through JSON bytes and returns (release JSON, charged ε).
fn service_release<T: ExprRecord>(
    service: &MeasurementService,
    plan: &Plan<T>,
    analyst: &str,
) -> (String, f64) {
    // Force the full byte round trip: Plan → PlanSpec → bytes → PlanSpec → request.
    let spec = plan.to_spec().expect("expression plans serialize");
    let bytes = spec.to_json_string();
    let reparsed = PlanSpec::from_json(&bytes).expect("bytes parse back");
    assert_eq!(reparsed, spec, "spec round-trips through bytes");
    assert_eq!(reparsed.to_json_string(), bytes, "encoding is canonical");

    let request = MeasureRequest {
        analyst: analyst.to_string(),
        epsilon: EPSILON,
        spec: reparsed,
        id: None,
        trace: false,
        encoding: ResponseEncoding::Json,
    };
    let response = service.handle_json(&request.to_json_string(), &mut StdRng::seed_from_u64(SEED));
    let parsed = Json::parse(&response).expect("response is JSON");
    assert_eq!(
        parsed.get("ok").and_then(Json::as_bool),
        Some(true),
        "request rejected: {response}"
    );
    let release = parsed.get("release").expect("release present").to_compact();
    let charged: f64 = parsed
        .get("charged")
        .and_then(Json::as_arr)
        .expect("charged present")
        .iter()
        .map(|pair| pair.as_arr().unwrap()[1].as_f64().unwrap())
        .sum();
    (release, charged)
}

/// The acceptance matrix: every built-in analysis, closure vs. wire-shipped expression
/// form, byte-identical releases and the quoted multiplicities charged.
#[test]
fn every_builtin_analysis_round_trips_byte_identically_with_correct_debits() {
    let graph = toy_graph();
    let cases: Vec<(&str, u32)> = vec![
        ("degree_ccdf", 1),
        ("degree_sequence", 1),
        ("nodes", 1),
        ("node_count", 1),
        ("edge_count", 1),
        ("tbd", 9),
        ("jdd", 4),
        ("sbd", 12),
    ];

    for (name, multiplicity) in cases {
        let analyst = format!("analyst-{name}");
        let service = service_with(&graph, &analyst, 50.0);
        let source = Plan::<(u32, u32)>::source_expr(EDGES_DATASET);

        let (local, remote) = match name {
            "degree_ccdf" => (
                local_release(&degree_ccdf_plan(&source), &source, &graph),
                service_release(&service, &degree_ccdf_plan_expr(&source), &analyst),
            ),
            "degree_sequence" => (
                local_release(&degree_sequence_plan(&source), &source, &graph),
                service_release(&service, &degree_sequence_plan_expr(&source), &analyst),
            ),
            "nodes" => (
                local_release(&nodes_plan(&source), &source, &graph),
                service_release(&service, &nodes_plan_expr(&source), &analyst),
            ),
            "node_count" => (
                local_release(&node_count_plan(&source), &source, &graph),
                service_release(&service, &node_count_plan_expr(&source), &analyst),
            ),
            "edge_count" => (
                local_release(&edge_count_plan(&source), &source, &graph),
                service_release(&service, &edge_count_plan_expr(&source), &analyst),
            ),
            "tbd" => (
                local_release(&tbd_plan(&source, 2), &source, &graph),
                service_release(&service, &tbd_plan_expr(&source, 2), &analyst),
            ),
            "jdd" => (
                local_release(&jdd_plan(&source), &source, &graph),
                service_release(&service, &jdd_plan_expr(&source), &analyst),
            ),
            "sbd" => (
                local_release(&sbd_plan(&source), &source, &graph),
                service_release(&service, &sbd_plan_expr(&source), &analyst),
            ),
            _ => unreachable!(),
        };
        let (remote_release, charged) = remote;
        assert_eq!(
            remote_release, local,
            "{name}: wire-shipped release differs from the local typed release"
        );
        let expected = multiplicity as f64 * EPSILON;
        assert!(
            (charged - expected).abs() < 1e-12,
            "{name}: charged {charged}, expected {expected}"
        );
        assert!(
            (service.remaining(&analyst, EDGES_DATASET).unwrap() - (50.0 - expected)).abs() < 1e-9,
            "{name}: remaining budget off"
        );
    }
}

#[test]
fn typed_client_round_trips_records() {
    let graph = toy_graph();
    let service = MeasurementService::new();
    service
        .register(EDGES_DATASET, &symmetric_edge_dataset(&graph))
        .unwrap();
    service
        .grant("alice", EDGES_DATASET, PrivacyBudget::unlimited())
        .unwrap();
    let source = Plan::<(u32, u32)>::source_expr(EDGES_DATASET);
    let plan = degree_ccdf_plan_expr(&source);
    let client = ServiceClient::new(&service, "alice");
    let release = client
        .measure(&plan, 1e6, &mut StdRng::seed_from_u64(3))
        .unwrap();
    // At ε = 10⁶ the noisy CCDF is essentially exact; thresholds 0..max_degree appear.
    let exact = wpinq_graph::stats::degree_ccdf(&graph);
    assert_eq!(release.records.len(), exact.len());
    for (i, count) in exact.iter().enumerate() {
        let got = release.get(&(i as u64)).expect("threshold observed");
        assert!((got - *count as f64).abs() < 0.01, "ccdf[{i}]: {got}");
    }
    assert_eq!(release.charged, vec![(EDGES_DATASET.to_string(), 1e6)]);
    assert!(release.explain.contains("Shave(step=1)"));
    // The audit log kept the analyst-visible plan.
    assert!(service
        .audit_log()
        .iter()
        .any(|entry| entry.contains("alice")));
}

#[test]
fn closure_plans_are_rejected_client_side() {
    let graph = toy_graph();
    let service = service_with(&graph, "alice", 10.0);
    let source = Plan::<(u32, u32)>::source_expr(EDGES_DATASET);
    let client = ServiceClient::new(&service, "alice");
    let err = client
        .measure(
            &degree_ccdf_plan(&source),
            0.5,
            &mut StdRng::seed_from_u64(0),
        )
        .unwrap_err();
    assert!(matches!(err, wpinq_service::ClientError::NotSerializable));
}

#[test]
fn missing_grant_and_exhausted_budget_charge_nothing() {
    let graph = toy_graph();
    let service = service_with(&graph, "alice", 1.0);
    let source = Plan::<(u32, u32)>::source_expr(EDGES_DATASET);
    let plan = tbd_plan_expr(&source, 1); // multiplicity 9
    let mut rng = StdRng::seed_from_u64(1);

    // Bob has no grant at all.
    let bob = ServiceClient::new(&service, "bob");
    let err = bob.measure(&plan, 0.1, &mut rng).unwrap_err();
    assert!(err.to_string().contains("no budget grant"), "{err}");

    // Alice's grant cannot afford 9 × 0.2.
    let alice = ServiceClient::new(&service, "alice");
    let err = alice.measure(&plan, 0.2, &mut rng).unwrap_err();
    assert!(err.to_string().contains("exceeded"), "{err}");
    assert_eq!(
        service.remaining("alice", EDGES_DATASET),
        Some(1.0),
        "rejected measurement must charge nothing"
    );

    // 9 × 0.1 exactly fails nothing — then the budget is drained.
    let release = alice.measure(&plan, 0.1, &mut rng).unwrap();
    assert!((release.remaining[0].1 - 0.1).abs() < 1e-9);
}

#[test]
fn unknown_datasets_and_type_mismatches_are_rejected() {
    let graph = toy_graph();
    let service = service_with(&graph, "alice", 10.0);
    let mut rng = StdRng::seed_from_u64(4);
    let client = ServiceClient::new(&service, "alice");

    // Unknown dataset name.
    let stranger = Plan::<(u32, u32)>::source_expr("not-registered");
    let err = client
        .measure(&edge_count_plan_expr(&stranger), 0.1, &mut rng)
        .unwrap_err();
    assert!(err.to_string().contains("unknown dataset"), "{err}");

    // Declared type differs from the registered one.
    let mistyped = Plan::<u64>::source_expr(EDGES_DATASET);
    let err = client
        .measure(
            &mistyped.select_expr::<u64>(wpinq::Expr::input()),
            0.1,
            &mut rng,
        )
        .unwrap_err();
    assert!(err.to_string().contains("registered as"), "{err}");
    assert_eq!(service.remaining("alice", EDGES_DATASET), Some(10.0));
}

#[test]
fn redundant_requests_are_charged_for_the_deduplicated_plan() {
    // Two independently built copies of the degree chain, merged by union: the service's
    // optimizer-based accounting charges 1ε, not 2ε — and the released bytes still match
    // the unoptimized evaluation (bitwise guarantee of the rewrite pass). The level is
    // pinned to Full so the assertion holds under the WPINQ_OPTIMIZE=0 CI matrix leg.
    let graph = toy_graph();
    let service =
        service_with(&graph, "alice", 10.0).with_optimize_level(wpinq::plan::OptimizeLevel::Full);
    let source = Plan::<(u32, u32)>::source_expr(EDGES_DATASET);
    let merged = degree_ccdf_plan_expr(&source).union(&degree_ccdf_plan_expr(&source));
    let client = ServiceClient::new(&service, "alice");
    let release = client
        .measure(&merged, EPSILON, &mut StdRng::seed_from_u64(SEED))
        .unwrap();
    assert_eq!(release.charged, vec![(EDGES_DATASET.to_string(), EPSILON)]);

    // Byte-identical to the single chain measured locally (Union(X, X) = X).
    let local = local_release(&degree_ccdf_plan(&source), &source, &graph);
    let parsed = Json::parse(&release.raw).unwrap();
    assert_eq!(parsed.get("release").unwrap().to_compact(), local);
}
