//! Service-level columnar equivalence: the same wire-shipped measurement request,
//! handled once with the columnar kernels forced off and once forced on, must return
//! **byte-identical** release JSON and debit **identical** ε from the analyst's grant —
//! and both must match the closure-built typed plan measured locally. The engine toggle
//! is invisible at the privacy boundary: same bytes out, same budget gone.

use rand::rngs::StdRng;
use rand::SeedableRng;

use wpinq::plan::{PlanBindings, SequentialExecutor};
use wpinq::prelude::*;
use wpinq_analyses::degree::{degree_ccdf_plan, degree_ccdf_plan_expr};
use wpinq_analyses::edges::{symmetric_edge_dataset, EDGES_DATASET};
use wpinq_analyses::jdd::{jdd_plan, jdd_plan_expr};
use wpinq_analyses::squares::{sbd_plan, sbd_plan_expr};
use wpinq_analyses::triangles::{tbd_plan, tbd_plan_expr};
use wpinq_expr::{set_columnar_override, set_radix_override, Json};
use wpinq_graph::Graph;
use wpinq_service::{release_to_json, MeasureRequest, MeasurementService, ResponseEncoding};

const SEED: u64 = 2014;
const EPSILON: f64 = 0.25;

/// Restores the process-wide columnar/radix overrides when the test scope exits.
struct OverrideGuard;

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        set_columnar_override(None);
        set_radix_override(None);
    }
}

fn toy_graph() -> Graph {
    Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5)])
}

/// Handles `plan`'s wire form on a fresh single-grant service and returns the release
/// JSON plus the total ε charged.
fn measure<T: ExprRecord>(graph: &Graph, plan: &Plan<T>) -> (String, f64) {
    let analyst = "analyst";
    let service = MeasurementService::new();
    service
        .register(EDGES_DATASET, &symmetric_edge_dataset(graph))
        .unwrap();
    service
        .grant(analyst, EDGES_DATASET, PrivacyBudget::new(50.0))
        .unwrap();
    let request = MeasureRequest {
        analyst: analyst.to_string(),
        epsilon: EPSILON,
        spec: plan.to_spec().expect("expression plans serialize"),
        id: None,
        trace: false,
        encoding: ResponseEncoding::Json,
    };
    let response = service.handle_json(&request.to_json_string(), &mut StdRng::seed_from_u64(SEED));
    let parsed = Json::parse(&response).expect("response is JSON");
    assert_eq!(
        parsed.get("ok").and_then(Json::as_bool),
        Some(true),
        "request rejected: {response}"
    );
    let release = parsed.get("release").expect("release present").to_compact();
    let charged: f64 = parsed
        .get("charged")
        .and_then(Json::as_arr)
        .expect("charged present")
        .iter()
        .map(|pair| pair.as_arr().unwrap()[1].as_f64().unwrap())
        .sum();
    (release, charged)
}

/// The closure-built typed twin, measured locally (never columnar-eligible).
fn local_release<T: ExprRecord>(
    plan: &Plan<T>,
    source: &Plan<(u32, u32)>,
    graph: &Graph,
) -> String {
    let mut bindings = PlanBindings::new();
    bindings.bind(source, symmetric_edge_dataset(graph));
    let counts = plan.noisy_count(EPSILON).release_with(
        &bindings,
        &SequentialExecutor,
        &mut StdRng::seed_from_u64(SEED),
    );
    release_to_json(&counts)
}

fn check<T: ExprRecord>(name: &str, graph: &Graph, plan: &Plan<T>, typed_reference: &str) {
    // The full engine matrix: WPINQ_COLUMNAR × WPINQ_RADIX (radix only participates on
    // the columnar path, but every cell must release the same bytes regardless).
    set_columnar_override(Some(false));
    set_radix_override(None);
    let (row_release, row_charged) = measure(graph, plan);
    for radix in [false, true] {
        set_columnar_override(Some(true));
        set_radix_override(Some(radix));
        let (col_release, col_charged) = measure(graph, plan);
        assert_eq!(
            col_release, row_release,
            "{name}: columnar release bytes drifted from the row interpreter (radix={radix})"
        );
        assert_eq!(
            col_charged.to_bits(),
            row_charged.to_bits(),
            "{name}: columnar path charged a different budget (radix={radix})"
        );
    }
    set_columnar_override(None);
    set_radix_override(None);

    assert_eq!(
        row_release, typed_reference,
        "{name}: dynamic release drifted from the typed closure plan"
    );
    assert!(row_charged > 0.0, "{name}: measurement charged nothing");
}

#[test]
fn columnar_and_row_service_paths_release_identical_bytes_and_debits() {
    let _restore = OverrideGuard;
    let graph = toy_graph();
    let source = Plan::<(u32, u32)>::source_expr(EDGES_DATASET);

    // Select/filter/group-by/join-heavy analyses: every columnar kernel participates.
    check(
        "degree_ccdf",
        &graph,
        &degree_ccdf_plan_expr(&source),
        &local_release(&degree_ccdf_plan(&source), &source, &graph),
    );
    check(
        "tbd",
        &graph,
        &tbd_plan_expr(&source, 2),
        &local_release(&tbd_plan(&source, 2), &source, &graph),
    );
    check(
        "jdd",
        &graph,
        &jdd_plan_expr(&source),
        &local_release(&jdd_plan(&source), &source, &graph),
    );
    check(
        "sbd",
        &graph,
        &sbd_plan_expr(&source),
        &local_release(&sbd_plan(&source), &source, &graph),
    );
}
