//! Property test: random expression-built plans survive the full wire round trip
//! `Plan → PlanSpec → bytes → PlanSpec → Plan` and release **byte-identical** noisy
//! outputs for a fixed seed, across executors {sequential, 2 shards, 8 shards} and
//! optimize levels {none, full}.
//!
//! The reconstructed plan runs over dynamic `Value` records while the original runs over
//! typed `(u64, u64)` records, so this property pins the whole chain at once: encoding
//! canonicality, parser fidelity, expression-interpreter ≡ typed-closure agreement,
//! order-preservation of the `Value` conversion, canonical float accumulation, and
//! sorted-order noise assignment.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use wpinq::plan::{
    dataset_to_values, plan_from_spec, OptimizeLevel, PlanBindings, SequentialExecutor,
    ShardedExecutor,
};
use wpinq::{Expr, NoisyCounts, Plan, PlanSpec, ReduceSpec, WeightedDataset};
use wpinq_service::{release_to_json, release_values_to_json};

type Rec = (u64, u64);

/// A random delta-built dataset of pair records.
fn pair_dataset() -> impl Strategy<Value = WeightedDataset<Rec>> {
    proptest::collection::vec(((0u64..12, 0u64..6), -2.0f64..2.0), 1..40).prop_map(|deltas| {
        let mut data = WeightedDataset::new();
        for (record, delta) in deltas {
            data.add_weight(record, delta);
        }
        data
    })
}

/// One instruction of the random expression-plan builder (stack machine over
/// `Plan<(u64, u64)>`, every payload an expression).
#[derive(Debug, Clone)]
enum ExprOp {
    PushSource,
    Dup,
    Swap,
    AddConst(u64),
    Filter(u64),
    SelectMany,
    GroupBy(u64),
    Shave,
    Join(u64),
    Union,
    Intersect,
    Concat,
    Except,
}

fn expr_op() -> impl Strategy<Value = ExprOp> {
    (0u8..13, 1u64..5).prop_map(|(op, k)| match op {
        0 => ExprOp::PushSource,
        1 => ExprOp::Dup,
        2 => ExprOp::Swap,
        3 => ExprOp::AddConst(k),
        4 => ExprOp::Filter(k),
        5 => ExprOp::SelectMany,
        6 => ExprOp::GroupBy(k),
        7 => ExprOp::Shave,
        8 => ExprOp::Join(k),
        9 => ExprOp::Union,
        10 => ExprOp::Intersect,
        11 => ExprOp::Concat,
        _ => ExprOp::Except,
    })
}

fn build_plan(source: &Plan<Rec>, program: &[ExprOp]) -> Plan<Rec> {
    let x = Expr::input;
    let mut stack: Vec<Plan<Rec>> = vec![source.clone()];
    for op in program {
        match op {
            ExprOp::PushSource => stack.push(source.clone()),
            ExprOp::Dup => {
                let top = stack.last().expect("stack never empties").clone();
                stack.push(top);
            }
            ExprOp::Swap => {
                let top = stack.pop().unwrap();
                stack.push(top.select_expr::<Rec>(Expr::tuple(vec![x().field(1), x().field(0)])));
            }
            ExprOp::AddConst(k) => {
                let top = stack.pop().unwrap();
                stack.push(top.select_expr::<Rec>(Expr::tuple(vec![
                    x().field(0).add(Expr::u64(*k)),
                    x().field(1),
                ])));
            }
            ExprOp::Filter(k) => {
                let top = stack.pop().unwrap();
                stack.push(top.filter_expr(x().field(0).rem(Expr::u64(1 + *k)).ne(Expr::u64(0))));
            }
            ExprOp::SelectMany => {
                let top = stack.pop().unwrap();
                stack.push(top.select_many_unit_expr::<Rec>(vec![
                    Expr::tuple(vec![x().field(0), Expr::u64(0)]),
                    Expr::tuple(vec![x().field(1), Expr::u64(1)]),
                ]));
            }
            ExprOp::GroupBy(k) => {
                let top = stack.pop().unwrap();
                stack.push(top.group_by_expr::<u64, u64>(
                    x().field(0).rem(Expr::u64(1 + *k)),
                    ReduceSpec::CountThen(Expr::input()),
                ));
            }
            ExprOp::Shave => {
                let top = stack.pop().unwrap();
                stack.push(
                    top.shave_const(0.5)
                        .select_expr::<Rec>(Expr::tuple(vec![x().field(0).field(0), x().field(1)])),
                );
            }
            ExprOp::Join(k) => {
                if stack.len() < 2 {
                    continue;
                }
                let right = stack.pop().unwrap();
                let left = stack.pop().unwrap();
                stack.push(left.join_expr::<Rec, u64, Rec>(
                    &right,
                    x().field(0).rem(Expr::u64(1 + *k)),
                    x().field(0).rem(Expr::u64(1 + *k)),
                    Expr::tuple(vec![x().field(0).field(0), x().field(1).field(1)]),
                ));
            }
            ExprOp::Union | ExprOp::Intersect | ExprOp::Concat | ExprOp::Except => {
                if stack.len() < 2 {
                    continue;
                }
                let right = stack.pop().unwrap();
                let left = stack.pop().unwrap();
                stack.push(match op {
                    ExprOp::Union => left.union(&right),
                    ExprOp::Intersect => left.intersect(&right),
                    ExprOp::Concat => left.concat(&right),
                    _ => left.except(&right),
                });
            }
        }
    }
    stack.pop().expect("stack never empties")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn random_expr_plans_round_trip_bytes_and_release_byte_identically(
        program in proptest::collection::vec(expr_op(), 1..10),
        data in pair_dataset(),
    ) {
        const SEED: u64 = 99;
        const EPSILON: f64 = 0.75;

        let source = Plan::<Rec>::source_expr("records");
        let plan = build_plan(&source, &program);

        // Plan → PlanSpec → bytes → PlanSpec, canonically.
        let spec = plan.to_spec().expect("expression-built plans serialize");
        let bytes = spec.to_json_string();
        let reparsed = PlanSpec::from_json(&bytes).expect("bytes parse back");
        prop_assert_eq!(&reparsed, &spec);
        prop_assert_eq!(reparsed.to_json_string(), bytes);

        // PlanSpec → Plan (dynamic records).
        let rebuilt = plan_from_spec(&reparsed).expect("validated spec rebuilds");
        let mut typed_bindings = PlanBindings::new();
        typed_bindings.bind(&source, data.clone());
        let mut dyn_bindings = PlanBindings::new();
        for dyn_source in &rebuilt.sources {
            prop_assert_eq!(dyn_source.name.as_str(), "records");
            dyn_bindings.bind_shared(
                &dyn_source.plan,
                std::sync::Arc::new(dataset_to_values(&data)),
            );
        }

        // Byte-identical releases across executors × optimize levels.
        let sharded2 = ShardedExecutor::new(2);
        let sharded8 = ShardedExecutor::new(8);
        let executors: [&dyn wpinq::plan::Executor; 3] =
            [&SequentialExecutor, &sharded2, &sharded8];
        let reference = {
            let out = plan.eval_opt(&typed_bindings, &SequentialExecutor, OptimizeLevel::None);
            release_to_json(&NoisyCounts::measure(
                &out,
                EPSILON,
                &mut StdRng::seed_from_u64(SEED),
            ))
        };
        for executor in executors {
            for level in [OptimizeLevel::None, OptimizeLevel::Full] {
                let typed = plan.eval_opt(&typed_bindings, executor, level);
                let typed_release = release_to_json(&NoisyCounts::measure(
                    &typed,
                    EPSILON,
                    &mut StdRng::seed_from_u64(SEED),
                ));
                prop_assert_eq!(
                    &typed_release, &reference,
                    "typed release drifted ({} shards, {level})", executor.shard_count()
                );
                let dynamic = rebuilt.plan.eval_opt(&dyn_bindings, executor, level);
                let dyn_release = release_values_to_json(&NoisyCounts::measure(
                    &dynamic,
                    EPSILON,
                    &mut StdRng::seed_from_u64(SEED),
                ));
                prop_assert_eq!(
                    &dyn_release, &reference,
                    "dynamic release drifted ({} shards, {level})", executor.shard_count()
                );
            }
        }
    }
}

/// Rebuilt plans are themselves re-serializable: the dynamic reconstruction's
/// pair-repacking adapters (after GroupBy/Shave) carry the value-level identity
/// expression, so a service can persist or forward a received plan.
#[test]
fn rebuilt_plans_re_serialize_and_render_without_opaque_nodes() {
    let x = Expr::input;
    let source = Plan::<Rec>::source_expr("records");
    let plan = source
        .group_by_expr::<u64, u64>(x().field(0), ReduceSpec::CountThen(Expr::input()))
        .shave_const(0.5)
        .select_expr::<Rec>(Expr::tuple(vec![x().field(0).field(0), x().field(1)]));
    let spec = plan.to_spec().unwrap();
    let rebuilt = plan_from_spec(&spec).unwrap();

    let respec = rebuilt
        .plan
        .to_spec()
        .expect("dynamically rebuilt plans must stay serializable");
    assert!(respec.validate().is_ok());
    assert!(
        !rebuilt.plan.render().contains("<fn>"),
        "audit renders must not show nodes the analyst never authored:\n{}",
        rebuilt.plan.render()
    );

    // And the re-serialized plan still evaluates identically.
    let data: WeightedDataset<Rec> =
        WeightedDataset::from_pairs((0u64..10).map(|i| ((i % 4, i), 1.0 + i as f64)));
    let mut dyn_bindings = PlanBindings::new();
    dyn_bindings.bind(&rebuilt.sources[0].plan, dataset_to_values(&data));
    let first = rebuilt.plan.eval(&dyn_bindings);
    let again = plan_from_spec(&respec).unwrap();
    let mut again_bindings = PlanBindings::new();
    again_bindings.bind(&again.sources[0].plan, dataset_to_values(&data));
    let second = again.plan.eval(&again_bindings);
    assert_eq!(first.len(), second.len());
    for (record, weight) in first.iter() {
        assert_eq!(weight.to_bits(), second.weight(record).to_bits());
    }
}
