//! Telemetry must be free at the service boundary: a request with `"trace":true`
//! releases the **same bytes** and debits the **same ε** as the identical request
//! without the flag, under every executor — and the envelope's budget quote is live,
//! even when the release itself is a cache replay.

use wpinq::plan::executor_for_threads;
use wpinq::prelude::*;
use wpinq_analyses::degree::degree_ccdf_plan_expr;
use wpinq_analyses::edges::{symmetric_edge_dataset, EDGES_DATASET};
use wpinq_expr::Json;
use wpinq_graph::Graph;
use wpinq_service::{MeasureRequest, MeasurementService, ResponseEncoding};

const SEED: u64 = 77;
const EPSILON: f64 = 0.25;

fn toy_graph() -> Graph {
    Graph::from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (4, 5)])
}

fn service_for(threads: usize, budget: f64) -> MeasurementService {
    let service = MeasurementService::new()
        .with_executor(executor_for_threads(threads))
        .with_noise_seed(SEED);
    service
        .register(EDGES_DATASET, &symmetric_edge_dataset(&toy_graph()))
        .unwrap();
    service
        .grant("analyst", EDGES_DATASET, PrivacyBudget::new(budget))
        .unwrap();
    service
}

fn ccdf_request(trace: bool, id: &str) -> MeasureRequest {
    MeasureRequest {
        analyst: "analyst".into(),
        epsilon: EPSILON,
        spec: degree_ccdf_plan_expr(&Plan::source_expr(EDGES_DATASET))
            .to_spec()
            .expect("expression plans serialize"),
        id: Some(id.into()),
        trace,
        encoding: ResponseEncoding::Json,
    }
}

/// The payload fields tracing must not perturb, extracted from a response envelope.
fn payload(response: &str) -> (String, String, String) {
    let json = Json::parse(response).expect("response is JSON");
    assert_eq!(
        json.get("ok").and_then(Json::as_bool),
        Some(true),
        "{response}"
    );
    let field = |name: &str| json.get(name).expect(name).to_compact();
    (field("release"), field("charged"), field("remaining"))
}

/// Byte-identical releases and identical ε debits with `"trace":true` vs absent,
/// across the sequential, 2-shard, and 8-shard executors. Two services per executor
/// (same noise seed), one serving traced and one untraced requests, must agree on
/// every analyst-visible payload byte — the traced response merely carries an extra
/// `"trace"` field.
#[test]
fn traced_requests_release_identical_bytes_and_debits_across_executors() {
    for threads in [1usize, 2, 8] {
        let traced_service = service_for(threads, 10.0);
        let untraced_service = service_for(threads, 10.0);

        let traced = traced_service.handle_line(&ccdf_request(true, "t").to_json_string());
        let untraced = untraced_service.handle_line(&ccdf_request(false, "t").to_json_string());

        assert!(
            traced.contains("\"trace\":") && traced.contains("\"spans\":"),
            "trace:true response must carry the trace ({threads} threads): {traced}"
        );
        assert!(
            traced.contains("\"analyze\""),
            "the trace embeds the EXPLAIN ANALYZE report ({threads} threads)"
        );
        assert!(
            !untraced.contains("\"trace\":"),
            "untraced response stays clean ({threads} threads)"
        );
        assert_eq!(
            payload(&traced),
            payload(&untraced),
            "tracing must not perturb release/charged/remaining ({threads} threads)"
        );
        let spent_traced = 10.0 - traced_service.remaining("analyst", EDGES_DATASET).unwrap();
        let spent_untraced = 10.0
            - untraced_service
                .remaining("analyst", EDGES_DATASET)
                .unwrap();
        assert_eq!(
            spent_traced.to_bits(),
            spent_untraced.to_bits(),
            "tracing must not change the debit ({threads} threads)"
        );
    }
}

/// The trace flag is not part of the measurement-cache key: a traced repeat of an
/// untraced request replays the cached release bytes (zero extra ε) and still gets its
/// own per-request trace, marked as a cache hit.
#[test]
fn trace_flag_replays_the_cached_release() {
    let service = service_for(1, 10.0);
    let first = service.handle_line(&ccdf_request(false, "a").to_json_string());
    let spent = 10.0 - service.remaining("analyst", EDGES_DATASET).unwrap();
    let second = service.handle_line(&ccdf_request(true, "a").to_json_string());
    assert_eq!(
        payload(&first),
        payload(&second),
        "the cached payload replays byte-identically"
    );
    assert!(second.contains("\"cache\":\"hit\""), "{second}");
    let spent_after = 10.0 - service.remaining("analyst", EDGES_DATASET).unwrap();
    assert_eq!(
        spent.to_bits(),
        spent_after.to_bits(),
        "replay charges nothing"
    );
}

/// Regression: a cache-replayed envelope must quote the budgets as they stand *now*,
/// not as they stood when the entry was computed. An intervening (different) request
/// spends the grant down; the replay's `remaining` must reflect that.
#[test]
fn cache_replay_quotes_live_remaining() {
    let service = service_for(1, 10.0);

    let first = service.handle_line(&ccdf_request(false, "r1").to_json_string());
    let first_remaining = Json::parse(&first)
        .unwrap()
        .get("remaining")
        .expect("remaining")
        .to_compact();

    // A different plan (different ε ⇒ different cache key) spends more of the grant.
    let mut spender = ccdf_request(false, "spend");
    spender.epsilon = 0.5;
    let spent_response = service.handle_line(&spender.to_json_string());
    assert!(spent_response.contains("\"ok\":true"), "{spent_response}");

    // The replay's release is byte-identical, but its quote is live.
    let replay = service.handle_line(&ccdf_request(false, "r2").to_json_string());
    let replay_json = Json::parse(&replay).unwrap();
    assert_eq!(
        Json::parse(&first)
            .unwrap()
            .get("release")
            .unwrap()
            .to_compact(),
        replay_json.get("release").unwrap().to_compact(),
        "replayed release bytes are identical"
    );
    let replay_remaining = replay_json
        .get("remaining")
        .expect("remaining")
        .to_compact();
    assert_ne!(
        first_remaining, replay_remaining,
        "the replay must not quote the stale budget: {replay}"
    );
    let live = service.remaining("analyst", EDGES_DATASET).unwrap();
    assert!(
        replay_remaining.contains(&format!("{live}")),
        "the replay quotes the live grant ({live}): {replay_remaining}"
    );
}

/// The `{"op":"stats"}` sideband op exposes the registry over the normal front door.
#[test]
fn stats_op_reports_request_and_cache_metrics() {
    let service = service_for(1, 10.0);
    let _ = service.handle_line(&ccdf_request(false, "s1").to_json_string());
    let _ = service.handle_line(&ccdf_request(false, "s1").to_json_string());

    let stats = service.handle_line("{\"op\":\"stats\"}");
    let json = Json::parse(&stats).expect("stats is JSON");
    assert_eq!(
        json.get("ok").and_then(Json::as_bool),
        Some(true),
        "{stats}"
    );
    let rendered = json.get("stats").expect("stats body").to_compact();
    for family in [
        "wpinq_requests_total",
        "wpinq_request_latency_ms",
        "wpinq_cache_hits_total",
        "wpinq_budget_epsilon_remaining",
        "wpinq_budget_epsilon_spent",
    ] {
        assert!(
            rendered.contains(family),
            "stats missing '{family}': {rendered}"
        );
    }
}

/// The audit ring keeps the most recent entries, counts every drop, and never grows
/// past its capacity.
#[test]
fn audit_ring_is_bounded_and_counts_drops() {
    let service = MeasurementService::new()
        .with_audit_capacity(3)
        .with_noise_seed(SEED);
    service
        .register(EDGES_DATASET, &symmetric_edge_dataset(&toy_graph()))
        .unwrap();
    service
        .grant("analyst", EDGES_DATASET, PrivacyBudget::new(100.0))
        .unwrap();
    // Distinct ε per request ⇒ distinct cache keys ⇒ five admitted measurements.
    for k in 0..5u32 {
        let mut request = ccdf_request(false, "audit");
        request.epsilon = 0.1 + f64::from(k) * 0.01;
        let response = service.handle_line(&request.to_json_string());
        assert!(response.contains("\"ok\":true"), "{response}");
    }
    let log = service.audit_log();
    assert_eq!(log.len(), 3, "the ring keeps exactly its capacity");
    assert_eq!(
        service.audit_dropped(),
        2,
        "every aged-out entry is counted"
    );
    assert!(
        log.last().unwrap().contains("0.14"),
        "the most recent entry survives: {log:?}"
    );
}
